"""Write-ahead logging, checkpointing, and crash recovery for MVCC.

The paper's single-copy HTAP story implicitly assumes the base row image
*survives*: Polynesia keeps transactional updates durable while analytics
stream over the same data, and Farview's operator offload presumes the
base copy outlives device faults. This module closes that gap for the
reproduction: the :class:`~repro.db.mvcc.TransactionManager` can attach a
:class:`WriteAheadLog`, after which every transaction emits records to a
simulated flash log (:class:`~repro.storage.ssd.SsdLog`) whose appends
cost real NAND program time in the :class:`~repro.core.ledger.CostLedger`
and are subject to :class:`~repro.faults.FaultInjector` corruption.

On-"disk" record format (little-endian, per record)::

    +--------+------+--------+-------------+-------+-----------+
    | magic  | type | txn_id | payload_len | crc32 | payload   |
    | uint16 | u8   | uint64 | uint32      | u32   | len bytes |
    +--------+------+--------+-------------+-------+-----------+

``crc32`` covers ``type || txn_id || payload``; a record is accepted only
when its checksum matches. Record types: BEGIN (start_ts), WRITE (table,
new/old slot, raw row image), COMMIT (commit_ts), ABORT, CHECKPOINT
(checkpoint id + clock + next txn id).

Torn-tail policy: after a crash the *final* region of the log may be
garbage (a torn append or partial flush). :func:`scan_records` therefore
discards an invalid suffix silently — but only if no intact record
follows it. A failed checksum with valid records *after* it is media
corruption, not a crash artifact, and raises
:class:`~repro.errors.WalCorruptionError`: redo past it would silently
drop committed transactions.

**Known ambiguity of that policy**: the heuristic cannot tell media
corruption of the *final* durable record from a crash artifact. A bit
flip landing on the last record of the log — even a fully flushed
COMMIT — looks exactly like a torn append and is discarded, so that one
committed transaction vanishes without a :class:`WalCorruptionError`.
This is a fundamental limit of checksum-only framing, not an
implementation bug: with no durable out-of-band state, "the tail never
made it" and "the tail made it and was then damaged" produce the same
bytes. Production logs close the gap with per-record sequence numbers
plus a durable end-of-log pointer (or commit count) kept in a
superblock, so a missing flushed record is *detected* rather than
absorbed; this reproduction keeps the single-region log and instead
bounds the exposure to exactly one record at the tail — checkpoint
cadence (:class:`Checkpointer`) bounds how much history ever sits in
that window, and :attr:`RecoveryReport.torn_tail_bytes` makes every
discard visible to callers and to the chaos harness.

Redo rules (:func:`recover`): replay WRITE intents at their original
slot indices with begin/end stamps ``(NEVER, LIVE)`` — invisible — then
stamp ``commit_ts`` when the transaction's COMMIT record is reached.
Transactions with no COMMIT in the durable log (uncommitted or aborted)
leave only invisible garbage, exactly like a runtime abort, so the
recovered image matches the crashed one byte for byte over every
committed version. Replaying a record twice writes the same bytes to the
same slot: redo is idempotent by construction.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.ledger import CostLedger
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.errors import TransactionError, WalCorruptionError
from repro.obs import MetricsRegistry, Tracer, maybe_span
from repro.storage.ssd import SsdLog

__all__ = [
    "WalRecordType",
    "WalRecord",
    "WalStats",
    "WriteAheadLog",
    "Checkpoint",
    "Checkpointer",
    "RecoveryReport",
    "RecoveryResult",
    "encode_record",
    "scan_records",
    "redo_write",
    "redo_commit",
    "recover",
]

#: First two bytes of every record.
WAL_MAGIC = 0xFAB5

_HEADER = struct.Struct("<HBQII")  # magic, type, txn_id, payload_len, crc32
HEADER_BYTES = _HEADER.size

#: Refuse to believe a single record's payload exceeds this (a corrupted
#: length field would otherwise swallow megabytes of valid log).
MAX_PAYLOAD_BYTES = 1 << 24

#: CPU cycles charged per WAL byte for encode/CRC on append and for
#: decode/validate on recovery (a memcpy+CRC32 slice of an A53).
ENCODE_CYCLES_PER_BYTE = 3.0
DECODE_CYCLES_PER_BYTE = 4.0

#: Host CPU cycles per device microsecond at the default 1.5 GHz A53.
DEFAULT_CYCLES_PER_US = 1_500.0


class WalRecordType(enum.IntEnum):
    """Discriminator byte of one log record."""

    BEGIN = 1
    WRITE = 2
    COMMIT = 3
    ABORT = 4
    CHECKPOINT = 5


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record; unused fields stay at their defaults."""

    type: WalRecordType
    txn_id: int = 0
    #: BEGIN: snapshot timestamp the transaction started at.
    start_ts: int = 0
    #: COMMIT: timestamp stamped onto the write set.
    commit_ts: int = 0
    #: WRITE: target table name and the intent's slots.
    table: str = ""
    new_slot: Optional[int] = None
    old_slot: Optional[int] = None
    #: WRITE: raw row image of the new version (empty for pure deletes).
    row_bytes: bytes = b""
    #: CHECKPOINT: identity + manager state at the checkpoint.
    checkpoint_id: int = 0
    clock: int = 0
    next_txn_id: int = 0


def _encode_payload(rec: WalRecord) -> bytes:
    if rec.type is WalRecordType.BEGIN:
        return struct.pack("<q", rec.start_ts)
    if rec.type is WalRecordType.WRITE:
        name = rec.table.encode("utf-8")
        new_slot = -1 if rec.new_slot is None else rec.new_slot
        old_slot = -1 if rec.old_slot is None else rec.old_slot
        return (
            struct.pack("<H", len(name))
            + name
            + struct.pack("<qqI", new_slot, old_slot, len(rec.row_bytes))
            + rec.row_bytes
        )
    if rec.type is WalRecordType.COMMIT:
        return struct.pack("<q", rec.commit_ts)
    if rec.type is WalRecordType.ABORT:
        return b""
    if rec.type is WalRecordType.CHECKPOINT:
        return struct.pack("<QqQ", rec.checkpoint_id, rec.clock, rec.next_txn_id)
    raise TransactionError(f"unknown WAL record type {rec.type!r}")


def _decode_payload(rtype: WalRecordType, txn_id: int, payload: bytes) -> WalRecord:
    if rtype is WalRecordType.BEGIN:
        (start_ts,) = struct.unpack("<q", payload)
        return WalRecord(rtype, txn_id, start_ts=start_ts)
    if rtype is WalRecordType.WRITE:
        (name_len,) = struct.unpack_from("<H", payload, 0)
        off = 2 + name_len
        name = payload[2:off].decode("utf-8")
        new_slot, old_slot, row_len = struct.unpack_from("<qqI", payload, off)
        off += 20
        row = payload[off : off + row_len]
        if len(row) != row_len or off + row_len != len(payload):
            raise ValueError("WRITE payload length mismatch")
        return WalRecord(
            rtype,
            txn_id,
            table=name,
            new_slot=None if new_slot < 0 else new_slot,
            old_slot=None if old_slot < 0 else old_slot,
            row_bytes=row,
        )
    if rtype is WalRecordType.COMMIT:
        (commit_ts,) = struct.unpack("<q", payload)
        return WalRecord(rtype, txn_id, commit_ts=commit_ts)
    if rtype is WalRecordType.ABORT:
        if payload:
            raise ValueError("ABORT carries no payload")
        return WalRecord(rtype, txn_id)
    if rtype is WalRecordType.CHECKPOINT:
        checkpoint_id, clock, next_txn_id = struct.unpack("<QqQ", payload)
        return WalRecord(
            rtype,
            txn_id,
            checkpoint_id=checkpoint_id,
            clock=clock,
            next_txn_id=next_txn_id,
        )
    raise ValueError(f"unknown record type {rtype}")


def encode_record(rec: WalRecord) -> bytes:
    """Serialize one record: header + CRC32-protected body."""
    payload = _encode_payload(rec)
    body = bytes([int(rec.type)]) + rec.txn_id.to_bytes(8, "little") + payload
    crc = zlib.crc32(body)
    return (
        _HEADER.pack(WAL_MAGIC, int(rec.type), rec.txn_id, len(payload), crc)
        + payload
    )


def _try_decode(data: bytes, off: int) -> Optional[Tuple[WalRecord, int]]:
    """Decode the record starting at ``off``; None if invalid/truncated."""
    if off + HEADER_BYTES > len(data):
        return None
    magic, rtype_raw, txn_id, payload_len, crc = _HEADER.unpack_from(data, off)
    if magic != WAL_MAGIC or payload_len > MAX_PAYLOAD_BYTES:
        return None
    end = off + HEADER_BYTES + payload_len
    if end > len(data):
        return None
    payload = data[off + HEADER_BYTES : end]
    body = bytes([rtype_raw]) + txn_id.to_bytes(8, "little") + payload
    if zlib.crc32(body) != crc:
        return None
    try:
        rtype = WalRecordType(rtype_raw)
        rec = _decode_payload(rtype, txn_id, payload)
    except (ValueError, struct.error, UnicodeDecodeError):
        return None
    return rec, end


def _valid_record_after(data: bytes, off: int) -> Optional[int]:
    """Offset of the first intact record strictly after ``off``, if any."""
    magic = struct.pack("<H", WAL_MAGIC)
    pos = data.find(magic, off + 1)
    while pos != -1:
        if _try_decode(data, pos) is not None:
            return pos
        pos = data.find(magic, pos + 1)
    return None


def scan_records(data: bytes) -> Tuple[List[Tuple[WalRecord, int]], int]:
    """Decode a log image into ``[(record, end_offset), ...]``.

    Returns the records plus the offset where scanning stopped. A
    trailing invalid region (torn tail) is tolerated: everything from the
    returned offset to ``len(data)`` is discarded garbage. An invalid
    record *followed by an intact one* is mid-log corruption and raises
    :class:`WalCorruptionError` — the typed, loud failure the chaos suite
    demands instead of a silently wrong recovery.

    Caveat (see the module docstring): corruption confined to the final
    record is indistinguishable from a torn append and is discarded as
    tail garbage — even if that record was a flushed COMMIT. Callers who
    must notice use the returned stop offset (``stop < len(data)`` means
    bytes were dropped) against any out-of-band durable-length knowledge
    they hold.
    """
    out: List[Tuple[WalRecord, int]] = []
    off = 0
    while off < len(data):
        decoded = _try_decode(data, off)
        if decoded is None:
            resync = _valid_record_after(data, off)
            if resync is not None:
                raise WalCorruptionError(
                    f"WAL record at byte {off} failed validation but an intact "
                    f"record follows at byte {resync}: mid-log corruption "
                    "(refusing to redo past it)"
                )
            return out, off
        rec, end = decoded
        out.append((rec, end))
        off = end
    return out, off


@dataclass
class WalStats:
    """Append-side counters for one :class:`WriteAheadLog`."""

    records: int = 0
    bytes_appended: int = 0
    flushes: int = 0
    commits_logged: int = 0
    aborts_logged: int = 0
    writes_logged: int = 0


class WriteAheadLog:
    """The durability pipe between the MVCC layer and simulated flash.

    Appends buffer in the device's controller DRAM; :meth:`flush` is the
    commit barrier that programs them to NAND. Every byte costs cycles in
    :attr:`ledger` (bucket ``wal_append``), converted from device
    microseconds at ``cycles_per_us``, so enabling durability visibly
    moves the perf numbers instead of being free magic.
    """

    def __init__(
        self,
        device: Optional[SsdLog] = None,
        ledger: Optional[CostLedger] = None,
        cycles_per_us: float = DEFAULT_CYCLES_PER_US,
        tracer: Optional[Tracer] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.device = device or SsdLog()
        self.ledger = ledger or CostLedger(tracer=tracer)
        self.cycles_per_us = cycles_per_us
        self.stats = WalStats()
        #: Observability hook: append/flush/checkpoint/recovery spans.
        self.tracer = tracer
        if tracer is not None and self.ledger.tracer is None:
            self.ledger.tracer = tracer
        #: Metrics hook: WAL charges drive the simulated clock, flushes
        #: feed the fsync-barrier latency histogram, and the log/device
        #: counters are exposed through a collector.
        self.metrics: Optional["MetricsRegistry"] = None
        self._m_fsync = None
        #: Flight-recorder hook: checkpoint truncations and recovery
        #: passes are journaled when one is attached.
        self.journal = None
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Wire this WAL into ``registry`` (idempotent; also called when
        a :class:`~repro.db.mvcc.TransactionManager` adopts the WAL)."""
        from repro.obs import active_metrics
        from repro.obs.collectors import register_wal

        reg = active_metrics(registry)
        if reg is None or self.metrics is not None:
            return
        self.metrics = reg
        if self.ledger.metrics is None:
            self.ledger.metrics = reg
        self._m_fsync = reg.histogram(
            "wal_fsync_cycles",
            help="Commit-barrier flush latency in simulated CPU cycles",
        )
        register_wal(reg, self)

    def attach_journal(self, journal) -> None:
        """Wire this WAL into a flight recorder (idempotent)."""
        from repro.obs.journal import active_journal

        j = active_journal(journal)
        if j is None or self.journal is not None:
            return
        self.journal = j

    # ------------------------------------------------------------------
    # Appending.
    # ------------------------------------------------------------------
    def append(self, rec: WalRecord, durable: bool = False) -> int:
        """Buffer one record; ``durable=True`` flushes (commit barrier).

        Returns the log sequence number — the byte offset just past this
        record once it reaches the media.
        """
        data = encode_record(rec)
        with maybe_span(
            self.tracer,
            "wal.append",
            layer="wal",
            record=rec.type.name,
            nbytes=len(data),
        ):
            self.device.append(data)
            self.stats.records += 1
            self.stats.bytes_appended += len(data)
            if rec.type is WalRecordType.COMMIT:
                self.stats.commits_logged += 1
            elif rec.type is WalRecordType.ABORT:
                self.stats.aborts_logged += 1
            elif rec.type is WalRecordType.WRITE:
                self.stats.writes_logged += 1
            self.ledger.charge(
                CostLedger.WAL_APPEND, ENCODE_CYCLES_PER_BYTE * len(data)
            )
            lsn = self.device.durable_bytes + self.device.pending_bytes
            if durable:
                self.flush()
        return lsn

    def flush(self) -> None:
        """Force buffered records to the media (priced NAND programs)."""
        with maybe_span(self.tracer, "wal.flush", layer="wal") as span:
            us = self.device.flush()
            self.stats.flushes += 1
            self.ledger.charge(CostLedger.WAL_APPEND, us * self.cycles_per_us)
            if self._m_fsync is not None:
                self._m_fsync.observe(us * self.cycles_per_us)
            span.add_counter("device_us", us)

    # ------------------------------------------------------------------
    # Reading back.
    # ------------------------------------------------------------------
    def read_image(self) -> bytes:
        """The durable log image, with read-back cost in ``wal_recovery``."""
        with maybe_span(self.tracer, "wal.read_image", layer="wal") as span:
            data, us = self.device.read_all()
            self.ledger.charge(
                CostLedger.WAL_RECOVERY,
                us * self.cycles_per_us + DECODE_CYCLES_PER_BYTE * len(data),
            )
            span.set_attrs(nbytes=len(data))
            span.add_counter("device_us", us)
        return data

    def records(self) -> List[WalRecord]:
        """Validated records currently on the media (tail garbage dropped)."""
        recs, _ = scan_records(self.read_image())
        return [r for r, _ in recs]

    @property
    def durable_bytes(self) -> int:
        return self.device.durable_bytes


@dataclass
class _TableSnapshot:
    """One table's frozen image inside a checkpoint."""

    schema: TableSchema
    frame: bytes
    nrows: int
    version: int


@dataclass
class Checkpoint:
    """A point-in-time snapshot of every MVCC table plus manager state.

    The snapshot carries its own CRC32 over the frame bytes; recovery
    refuses a checkpoint whose image no longer matches (``validate``).
    """

    checkpoint_id: int
    clock: int
    next_txn_id: int
    snapshots: Dict[str, _TableSnapshot] = field(default_factory=dict)
    crc: int = 0

    @property
    def nbytes(self) -> int:
        """Snapshot payload size (what the checkpoint write costs)."""
        return sum(len(s.frame) for s in self.snapshots.values())

    def compute_crc(self) -> int:
        crc = zlib.crc32(
            struct.pack("<QqQ", self.checkpoint_id, self.clock, self.next_txn_id)
        )
        for name in sorted(self.snapshots):
            snap = self.snapshots[name]
            crc = zlib.crc32(name.encode("utf-8"), crc)
            crc = zlib.crc32(struct.pack("<qq", snap.nrows, snap.version), crc)
            crc = zlib.crc32(snap.frame, crc)
        return crc

    def validate(self) -> None:
        """Raise :class:`WalCorruptionError` if the image was damaged."""
        actual = self.compute_crc()
        if actual != self.crc:
            raise WalCorruptionError(
                f"checkpoint {self.checkpoint_id} failed its checksum "
                f"(stored {self.crc:#010x}, computed {actual:#010x})"
            )


class Checkpointer:
    """Snapshots MVCC tables and truncates the log behind them.

    Checkpoints require quiescence (no active transactions) — the same
    rule as :meth:`TransactionManager.vacuum`, because in-flight write
    intents hold slot indices the snapshot cannot represent. After the
    snapshot, the log is truncated to a single CHECKPOINT record, so
    recovery is ``checkpoint + short log`` instead of full-history redo.
    """

    def __init__(self, wal: WriteAheadLog):
        self.wal = wal
        self._next_id = 1
        #: Checkpoints taken through this checkpointer.
        self.taken = 0
        #: The most recent checkpoint (what recovery should start from).
        self.last: Optional[Checkpoint] = None

    def checkpoint(self, manager, tables: List[Table]) -> Checkpoint:
        """Snapshot ``tables`` + ``manager`` state; truncate the log."""
        if manager.active_count:
            raise TransactionError(
                "checkpoint requires no active transactions (write intents "
                "hold slot indices the snapshot cannot carry)"
            )
        cp = Checkpoint(
            checkpoint_id=self._next_id,
            clock=manager.now,
            next_txn_id=manager.next_txn_id,
        )
        self._next_id += 1
        for table in tables:
            cp.snapshots[table.schema.name] = _TableSnapshot(
                schema=table.schema,
                frame=bytes(table.frame.tobytes()),
                nrows=table.nrows,
                version=table.version,
            )
        cp.crc = cp.compute_crc()
        with maybe_span(
            self.wal.tracer,
            "wal.checkpoint",
            layer="wal",
            checkpoint_id=cp.checkpoint_id,
            nbytes=cp.nbytes,
            tables=len(cp.snapshots),
        ) as span:
            # Price the snapshot write: serialize + program every frame byte.
            page = self.wal.device.flash.config.page_bytes
            pages = -(-max(cp.nbytes, 1) // page)
            us = self.wal.device.flash.write_pages_us(pages)
            self.wal.ledger.charge(
                CostLedger.WAL_CHECKPOINT,
                us * self.wal.cycles_per_us + ENCODE_CYCLES_PER_BYTE * cp.nbytes,
            )
            span.add_counter("device_us", us)
            span.add_counter("pages_written", pages)
            # Truncate: the new log begins with the CHECKPOINT record.
            marker = encode_record(
                WalRecord(
                    WalRecordType.CHECKPOINT,
                    checkpoint_id=cp.checkpoint_id,
                    clock=cp.clock,
                    next_txn_id=cp.next_txn_id,
                )
            )
            self.wal.device.truncate(marker)
        self.taken += 1
        self.last = cp
        if self.wal.journal is not None:
            self.wal.journal.record(
                "wal.checkpoint",
                checkpoint_id=cp.checkpoint_id,
                nbytes=cp.nbytes,
                tables=len(cp.snapshots),
                clock=cp.clock,
            )
        return cp


def redo_write(
    tables: Dict[str, Table],
    known_schemas: Mapping[str, TableSchema],
    rec: WalRecord,
) -> Table:
    """Materialize one WRITE intent invisibly at its original slot.

    The single redo rule shared by full recovery (:func:`recover`) and
    incremental replication (:class:`repro.dist.replica.ShardReplica`):
    the new version's raw row image lands at exactly the slot the runtime
    used, stamped ``(NEVER, LIVE)`` by ``write_row_bytes`` padding, so it
    stays invisible until a COMMIT stamps it. Idempotent — same bytes,
    same slot.
    """
    if rec.table not in tables:
        if rec.table not in known_schemas:
            raise WalCorruptionError(
                f"WAL references table {rec.table!r} with no schema: "
                "pass it via recover(..., schemas=...) or a checkpoint"
            )
        tables[rec.table] = Table(known_schemas[rec.table])
    if rec.new_slot is not None:
        tables[rec.table].write_row_bytes(rec.new_slot, rec.row_bytes)
    return tables[rec.table]


def redo_commit(
    tables: Dict[str, Table],
    intents: List[WalRecord],
    commit_ts: int,
) -> int:
    """Stamp a committed transaction's write set visible at ``commit_ts``.

    New versions get their begin stamp, superseded versions their end
    stamp — the same order the runtime commit path uses. Returns the
    number of writes stamped. Shared by :func:`recover` and the
    incremental shard replica.
    """
    for w in intents:
        table = tables[w.table]
        if w.new_slot is not None:
            table.stamp_begin(w.new_slot, commit_ts)
        if w.old_slot is not None:
            table.stamp_end(w.old_slot, commit_ts)
    return len(intents)


@dataclass
class RecoveryReport:
    """What one :func:`recover` pass saw and did."""

    records_scanned: int = 0
    bytes_scanned: int = 0
    torn_tail_bytes: int = 0
    committed_redone: int = 0
    writes_redone: int = 0
    uncommitted_dropped: int = 0
    aborted_seen: int = 0
    checkpoint_id: Optional[int] = None
    recovered_clock: int = 0


@dataclass
class RecoveryResult:
    """Recovered state: a fresh manager, the rebuilt tables, the report."""

    manager: "TransactionManager"  # noqa: F821 - forward ref, see repro.db.mvcc
    tables: Dict[str, Table]
    report: RecoveryReport


def recover(
    wal: WriteAheadLog,
    checkpoint: Optional[Checkpoint] = None,
    schemas: Optional[Mapping[str, TableSchema]] = None,
    attach_wal: bool = False,
) -> RecoveryResult:
    """Rebuild MVCC state from a checkpoint plus the durable log.

    Validates the checkpoint CRC, scans the log (discarding a torn tail,
    raising :class:`WalCorruptionError` on mid-log corruption), replays
    WRITE intents invisibly at their original slots, stamps them on
    COMMIT, and drops everything uncommitted — restoring exactly the
    first-committer-wins state the crashed manager had established.
    Recovery is a pure function of ``(log image, checkpoint)``: running
    it twice yields identical tables, so redo is idempotent.

    ``schemas`` supplies table definitions for WAL-only recovery (no
    checkpoint); with a checkpoint they come from its snapshots. Pass
    ``attach_wal=True`` to let the recovered manager keep logging to the
    same log (normal restart); the default leaves it detached (what a
    what-if crash probe wants).
    """
    with maybe_span(
        wal.tracer,
        "wal.recover",
        layer="wal",
        with_checkpoint=checkpoint is not None,
    ) as span:
        result = _recover_impl(wal, checkpoint, schemas, attach_wal)
        span.set_attrs(
            records_scanned=result.report.records_scanned,
            committed_redone=result.report.committed_redone,
            torn_tail_bytes=result.report.torn_tail_bytes,
        )
    if wal.journal is not None:
        wal.journal.record(
            "wal.recovery",
            records_scanned=result.report.records_scanned,
            committed_redone=result.report.committed_redone,
            uncommitted_dropped=result.report.uncommitted_dropped,
            torn_tail_bytes=result.report.torn_tail_bytes,
            checkpoint_id=result.report.checkpoint_id,
        )
    return result


def _recover_impl(
    wal: WriteAheadLog,
    checkpoint: Optional[Checkpoint],
    schemas: Optional[Mapping[str, TableSchema]],
    attach_wal: bool,
) -> RecoveryResult:
    from repro.db.mvcc import TransactionManager  # local: avoid import cycle

    report = RecoveryReport()
    tables: Dict[str, Table] = {}
    known_schemas: Dict[str, TableSchema] = dict(schemas or {})
    clock_floor = 0
    next_txn_floor = 1
    if checkpoint is not None:
        checkpoint.validate()
        report.checkpoint_id = checkpoint.checkpoint_id
        clock_floor = checkpoint.clock
        next_txn_floor = checkpoint.next_txn_id
        for name, snap in checkpoint.snapshots.items():
            tables[name] = Table.restore(
                snap.schema, snap.frame, snap.nrows, snap.version
            )
            known_schemas[name] = snap.schema

    data = wal.read_image()
    records, stop = scan_records(data)
    report.records_scanned = len(records)
    report.bytes_scanned = stop
    report.torn_tail_bytes = len(data) - stop

    live: Dict[int, List[WalRecord]] = {}
    for rec, _end in records:
        if rec.type is WalRecordType.CHECKPOINT:
            if checkpoint is None:
                raise WalCorruptionError(
                    f"log begins at checkpoint {rec.checkpoint_id} but no "
                    "checkpoint snapshot was supplied: WAL-only redo would "
                    "silently miss every pre-checkpoint commit"
                )
            if rec.checkpoint_id != checkpoint.checkpoint_id:
                raise WalCorruptionError(
                    f"log begins at checkpoint {rec.checkpoint_id} but snapshot "
                    f"is checkpoint {checkpoint.checkpoint_id}"
                )
            clock_floor = max(clock_floor, rec.clock)
            next_txn_floor = max(next_txn_floor, rec.next_txn_id)
        elif rec.type is WalRecordType.BEGIN:
            live[rec.txn_id] = []
            clock_floor = max(clock_floor, rec.start_ts)
            next_txn_floor = max(next_txn_floor, rec.txn_id + 1)
        elif rec.type is WalRecordType.WRITE:
            redo_write(tables, known_schemas, rec)
            live.setdefault(rec.txn_id, []).append(rec)
        elif rec.type is WalRecordType.COMMIT:
            intents = live.pop(rec.txn_id, None)
            if intents is None:
                continue  # pre-checkpoint txn: already in the snapshot
            report.writes_redone += redo_commit(tables, intents, rec.commit_ts)
            report.committed_redone += 1
            clock_floor = max(clock_floor, rec.commit_ts)
        elif rec.type is WalRecordType.ABORT:
            if live.pop(rec.txn_id, None) is not None:
                report.aborted_seen += 1

    report.uncommitted_dropped = len(live)
    report.recovered_clock = clock_floor

    manager = TransactionManager(wal=wal if attach_wal else None)
    manager.restore_state(clock=clock_floor, next_txn_id=next_txn_floor)
    return RecoveryResult(manager=manager, tables=tables, report=report)
