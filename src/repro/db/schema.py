"""Table schemas: named, typed columns with a concrete byte layout.

A schema is the bridge between the relational world and the fabric's
byte-exact world: it lays columns out back to back in declaration order
(optionally padding the row to an alignment) and can emit the
:class:`~repro.core.geometry.DataGeometry` for any column subset.

Schemas can carry the two hidden MVCC timestamp columns of paper Section
III-C (``__begin_ts``/``__end_ts``), appended after the user columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.geometry import DataGeometry, FieldSlice
from repro.db.types import DataType, TIMESTAMP
from repro.errors import SchemaError

MVCC_BEGIN = "__begin_ts"
MVCC_END = "__end_ts"


@dataclass(frozen=True)
class Column:
    """One user-visible column: a name and a type."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name or self.name.strip() != self.name:
            raise SchemaError(f"bad column name {self.name!r}")


class TableSchema:
    """An ordered set of columns with computed byte offsets.

    ``row_align`` pads the row stride up to a multiple (the synthetic
    workloads use 64 to match the paper's 64-byte rows exactly).
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        row_align: int = 1,
        mvcc: bool = False,
    ):
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {name!r} has duplicate column names")
        for reserved in (MVCC_BEGIN, MVCC_END):
            if reserved in names:
                raise SchemaError(f"{reserved} is reserved for MVCC bookkeeping")
        self.name = name
        self.mvcc = mvcc
        self.columns: Tuple[Column, ...] = tuple(columns)
        if mvcc:
            self.columns = self.columns + (
                Column(MVCC_BEGIN, TIMESTAMP),
                Column(MVCC_END, TIMESTAMP),
            )
        self._offsets: Dict[str, int] = {}
        cursor = 0
        for col in self.columns:
            self._offsets[col.name] = cursor
            cursor += col.dtype.width
        if row_align > 1:
            cursor = (cursor + row_align - 1) // row_align * row_align
        self.row_stride = cursor
        self.row_align = row_align

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    @property
    def user_columns(self) -> Tuple[Column, ...]:
        """Columns excluding MVCC bookkeeping."""
        if not self.mvcc:
            return self.columns
        return self.columns[:-2]

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.user_columns)

    def column(self, name: str) -> Column:
        for c in self.columns:
            if c.name == name:
                return c
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    def offset_of(self, name: str) -> int:
        if name not in self._offsets:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return self._offsets[name]

    # ------------------------------------------------------------------
    # Geometry emission — the schema → fabric contract.
    # ------------------------------------------------------------------
    def field_slice(self, name: str) -> FieldSlice:
        col = self.column(name)
        return FieldSlice(
            name=col.name,
            offset=self.offset_of(name),
            width=col.dtype.width,
            dtype=col.dtype.np_dtype,
        )

    def geometry(self, names: Optional[Iterable[str]] = None) -> DataGeometry:
        """Geometry of the given column group (default: all user columns),
        in the requested order."""
        wanted = list(names) if names is not None else list(self.column_names)
        return DataGeometry(
            row_stride=self.row_stride,
            fields=tuple(self.field_slice(n) for n in wanted),
        )

    def full_geometry(self) -> DataGeometry:
        """Every column including MVCC bookkeeping."""
        return DataGeometry(
            row_stride=self.row_stride,
            fields=tuple(self.field_slice(c.name) for c in self.columns),
        )

    def bytes_of(self, names: Iterable[str]) -> int:
        """Packed width of a column group (data-movement accounting)."""
        return sum(self.column(n).dtype.width for n in names)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(f"{c.name}:{c.dtype.name}" for c in self.columns)
        return f"TableSchema({self.name!r}, [{cols}], stride={self.row_stride})"
