"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    select   := SELECT item (',' item)* FROM ident join* [WHERE pred]
                [GROUP BY ident (',' ident)*]
                [ORDER BY order (',' order)*] [LIMIT number]
    join     := JOIN ident ON ident '=' ident
    item     := expr [AS ident] | agg '(' (expr | '*') ')' [AS ident]
    pred     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := NOT not_expr | cmp
    cmp      := add ((cmpop add) | BETWEEN add AND add)?
    add      := mul (('+'|'-') mul)*
    mul      := atom (('*'|'/') atom)*
    atom     := number | string | date | interval | ident | '(' pred ')'

``DATE 'YYYY-MM-DD'`` folds to its day number and ``INTERVAL 'n' DAY``
folds to ``n``, so date arithmetic works over plain integers — matching
how DATE columns are stored.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    Literal,
    Not,
    Or,
)
from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.db.sql.nodes import (
    Aggregate,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
)
from repro.errors import SqlError

_EPOCH = datetime.date(1970, 1, 1)
_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")


class Parser:
    """One-token-lookahead parser over a token list."""

    def __init__(self, sql: str):
        self._tokens = tokenize(sql)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing.
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        self._pos += 1
        return tok

    def _expect_symbol(self, sym: str) -> None:
        if self._cur.kind is not TokenKind.SYMBOL or self._cur.text != sym:
            raise SqlError(f"expected {sym!r}, found {self._cur}")
        self._advance()

    def _expect_keyword(self, word: str) -> None:
        if not self._cur.is_keyword(word):
            raise SqlError(f"expected {word.upper()}, found {self._cur}")
        self._advance()

    def _expect_ident(self) -> str:
        if self._cur.kind is not TokenKind.IDENT:
            raise SqlError(f"expected identifier, found {self._cur}")
        return self._advance().text

    def _match_symbol(self, sym: str) -> bool:
        if self._cur.kind is TokenKind.SYMBOL and self._cur.text == sym:
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def parse_select(self) -> SelectStmt:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct")
        if self._cur.kind is TokenKind.SYMBOL and self._cur.text == "*":
            self._advance()
            items = [SelectItem(expr=Star())]
        else:
            items = [self._select_item()]
            while self._match_symbol(","):
                items.append(self._select_item())
        self._expect_keyword("from")
        table = self._expect_ident()
        joins: List[JoinClause] = []
        while self._match_keyword("join"):
            joins.append(self._join_clause())
        where = None
        if self._match_keyword("where"):
            where = self._predicate()
        group_by: Tuple[str, ...] = ()
        if self._match_keyword("group"):
            self._expect_keyword("by")
            names = [self._expect_ident()]
            while self._match_symbol(","):
                names.append(self._expect_ident())
            group_by = tuple(names)
        having = None
        if self._match_keyword("having"):
            if not group_by:
                raise SqlError("HAVING requires GROUP BY in this dialect")
            having = self._predicate()
        order_by: Tuple[OrderItem, ...] = ()
        if self._match_keyword("order"):
            self._expect_keyword("by")
            orders = [self._order_item()]
            while self._match_symbol(","):
                orders.append(self._order_item())
            order_by = tuple(orders)
        limit = None
        if self._match_keyword("limit"):
            if self._cur.kind is not TokenKind.NUMBER:
                raise SqlError(f"expected number after LIMIT, found {self._cur}")
            limit = int(self._advance().text)
        if self._cur.kind is not TokenKind.EOF:
            raise SqlError(f"trailing input at {self._cur}")
        return SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _join_clause(self) -> JoinClause:
        table = self._expect_ident()
        self._expect_keyword("on")
        left = self._expect_ident()
        self._expect_symbol("=")
        right = self._expect_ident()
        return JoinClause(table=table, left_col=left, right_col=right)

    def _order_item(self) -> OrderItem:
        expr = self._add()
        descending = False
        if self._match_keyword("desc"):
            descending = True
        else:
            self._match_keyword("asc")
        return OrderItem(expr=expr, descending=descending)

    def _select_item(self) -> SelectItem:
        if self._cur.kind is TokenKind.KEYWORD and self._cur.text in Aggregate.FUNCS:
            func = self._advance().text
            self._expect_symbol("(")
            arg: Optional[Expr]
            if func == "count" and self._match_symbol("*"):
                arg = None
            else:
                arg = self._add()
            self._expect_symbol(")")
            expr: object = Aggregate(func=func, arg=arg)
        else:
            expr = self._add()
        alias = None
        if self._match_keyword("as"):
            alias = self._expect_ident()
        return SelectItem(expr=expr, alias=alias)

    # ------------------------------------------------------------------
    # Predicates and expressions.
    # ------------------------------------------------------------------
    def _predicate(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        terms = [self._and_expr()]
        while self._match_keyword("or"):
            terms.append(self._and_expr())
        return terms[0] if len(terms) == 1 else Or(terms=tuple(terms))

    def _and_expr(self) -> Expr:
        terms = [self._not_expr()]
        while self._match_keyword("and"):
            terms.append(self._not_expr())
        return terms[0] if len(terms) == 1 else And(terms=tuple(terms))

    def _not_expr(self) -> Expr:
        if self._match_keyword("not"):
            return Not(term=self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._add()
        if self._cur.kind is TokenKind.SYMBOL and self._cur.text in _CMP_OPS:
            op = self._advance().text
            right = self._add()
            return Compare(op=op, left=left, right=right)
        if self._match_keyword("between"):
            low = self._add()
            self._expect_keyword("and")
            high = self._add()
            return Between(term=left, low=low, high=high)
        return left

    def _add(self) -> Expr:
        left = self._mul()
        while self._cur.kind is TokenKind.SYMBOL and self._cur.text in ("+", "-"):
            op = self._advance().text
            left = BinOp(op=op, left=left, right=self._mul())
        return left

    def _mul(self) -> Expr:
        left = self._atom()
        while self._cur.kind is TokenKind.SYMBOL and self._cur.text in ("*", "/"):
            op = self._advance().text
            left = BinOp(op=op, left=left, right=self._atom())
        return left

    def _atom(self) -> Expr:
        tok = self._cur
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            text = tok.text
            return Literal(float(text) if "." in text else int(text))
        if tok.kind is TokenKind.STRING:
            self._advance()
            return Literal(tok.text)
        if tok.is_keyword("date"):
            self._advance()
            if self._cur.kind is not TokenKind.STRING:
                raise SqlError(f"expected date string after DATE, found {self._cur}")
            raw = self._advance().text
            try:
                day = datetime.date.fromisoformat(raw)
            except ValueError as exc:
                raise SqlError(f"bad date literal {raw!r}: {exc}")
            return Literal((day - _EPOCH).days)
        if tok.is_keyword("interval"):
            self._advance()
            if self._cur.kind is not TokenKind.STRING:
                raise SqlError(f"expected quantity after INTERVAL, found {self._cur}")
            qty = int(self._advance().text)
            self._expect_keyword("day")
            return Literal(qty)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ColumnRef(name=tok.text)
        if self._match_symbol("("):
            inner = self._predicate()
            self._expect_symbol(")")
            return inner
        raise SqlError(f"unexpected token {tok}")


def parse(sql: str) -> SelectStmt:
    """Parse one ``SELECT`` statement."""
    return Parser(sql).parse_select()
