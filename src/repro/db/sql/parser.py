"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    statement := select | insert | update | delete | create | drop
               | begin | commit | rollback | explain            [';']
    select   := SELECT [DISTINCT] item (',' item)* FROM tableref join*
                [WHERE pred] [GROUP BY name (',' name)*] [HAVING pred]
                [ORDER BY order (',' order)*] [LIMIT number] [OFFSET number]
    tableref := ident [[AS] ident]
    join     := JOIN tableref ON ref '=' ref
    ref      := ident ['.' ident]
    item     := expr [AS ident] | agg '(' (expr | '*') ')' [AS ident]
    insert   := INSERT INTO ident ['(' ident (',' ident)* ')']
                VALUES tuple (',' tuple)*
    update   := UPDATE tableref SET ident '=' expr (',' ...)* [WHERE pred]
    delete   := DELETE FROM tableref [WHERE pred]
    create   := CREATE TABLE ident '(' ident type (',' ident type)* ')'
    explain  := EXPLAIN [ANALYZE] statement
    pred     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := NOT not_expr | cmp
    cmp      := add ((cmpop add) | BETWEEN add AND add
                | [NOT] IN '(' (values | select) ')')?
    add      := mul (('+'|'-') mul)*
    mul      := atom (('*'|'/') atom)*
    atom     := number | string | date | interval | ref | '-' atom
              | '(' (pred | select) ')'

``DATE 'YYYY-MM-DD'`` folds to its day number and ``INTERVAL 'n' DAY``
folds to ``n``, so date arithmetic works over plain integers — matching
how DATE columns are stored. ``(SELECT ...)`` in expression position
produces a :class:`ScalarSubquery`/:class:`InSubquery` placeholder the
statement pipeline folds to a constant before binding.

Every error is a :class:`SqlError` with the offending token's line/column
and a caret-annotated snippet of the statement text.
"""

from __future__ import annotations

import datetime
from typing import List, Optional, Tuple

from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.db.sql.lexer import Token, TokenKind, error_at, tokenize
from repro.db.sql.nodes import (
    Aggregate,
    BeginStmt,
    CommitStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    InSubquery,
    JoinClause,
    OrderItem,
    RollbackStmt,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    Star,
    UpdateStmt,
)
from repro.errors import SqlError

_EPOCH = datetime.date(1970, 1, 1)
_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")

#: Keywords that terminate a table reference (so a bare identifier after
#: a table name can safely be taken as its alias).
_TABLE_STOP = {
    "join", "on", "where", "group", "having", "order", "limit", "offset",
    "set",
}


class Parser:
    """One-token-lookahead parser over a token list."""

    def __init__(self, sql: str):
        self._sql = sql
        self._tokens = tokenize(sql)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing.
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._cur
        self._pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> SqlError:
        tok = tok or self._cur
        return error_at(message, self._sql, tok.position)

    def _expect_symbol(self, sym: str) -> None:
        if self._cur.kind is not TokenKind.SYMBOL or self._cur.text != sym:
            raise self._error(f"expected {sym!r}, found {self._cur}")
        self._advance()

    def _expect_keyword(self, word: str) -> None:
        if not self._cur.is_keyword(word):
            raise self._error(f"expected {word.upper()}, found {self._cur}")
        self._advance()

    def _expect_ident(self, what: str = "identifier") -> str:
        if self._cur.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}, found {self._cur}")
        return self._advance().text

    def _expect_number(self, what: str) -> int:
        if self._cur.kind is not TokenKind.NUMBER:
            raise self._error(f"expected number after {what}, found {self._cur}")
        return int(self._advance().text)

    def _match_symbol(self, sym: str) -> bool:
        if self._cur.kind is TokenKind.SYMBOL and self._cur.text == sym:
            self._advance()
            return True
        return False

    def _match_keyword(self, word: str) -> bool:
        if self._cur.is_keyword(word):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Statements.
    # ------------------------------------------------------------------
    def parse_statement(self):
        """Parse one statement of any kind (optionally ``;``-terminated)."""
        stmt = self._statement()
        self._match_symbol(";")
        if self._cur.kind is not TokenKind.EOF:
            raise self._error(f"trailing input at {self._cur}")
        return stmt

    def _statement(self):
        tok = self._cur
        if tok.is_keyword("select"):
            return self._select_body()
        if tok.is_keyword("insert"):
            return self._insert()
        if tok.is_keyword("update"):
            return self._update()
        if tok.is_keyword("delete"):
            return self._delete()
        if tok.is_keyword("create"):
            return self._create_table()
        if tok.is_keyword("drop"):
            self._advance()
            self._expect_keyword("table")
            return DropTableStmt(name=self._expect_ident("table name"))
        if tok.is_keyword("begin"):
            self._advance()
            return BeginStmt()
        if tok.is_keyword("commit"):
            self._advance()
            return CommitStmt()
        if tok.is_keyword("rollback") or tok.is_keyword("abort"):
            self._advance()
            return RollbackStmt()
        if tok.is_keyword("explain"):
            self._advance()
            analyze = self._match_keyword("analyze")
            if self._cur.is_keyword("explain"):
                raise self._error("EXPLAIN cannot nest")
            return ExplainStmt(target=self._statement(), analyze=analyze)
        raise self._error(f"expected a statement, found {self._cur}")

    def parse_select(self) -> SelectStmt:
        self._expect_keyword("select")
        stmt = self._select_tail()
        self._match_symbol(";")
        if self._cur.kind is not TokenKind.EOF:
            raise self._error(f"trailing input at {self._cur}")
        return stmt

    def _select_body(self) -> SelectStmt:
        self._expect_keyword("select")
        return self._select_tail()

    def _select_tail(self) -> SelectStmt:
        distinct = self._match_keyword("distinct")
        if self._cur.kind is TokenKind.SYMBOL and self._cur.text == "*":
            self._advance()
            items = [SelectItem(expr=Star())]
        else:
            items = [self._select_item()]
            while self._match_symbol(","):
                items.append(self._select_item())
        self._expect_keyword("from")
        table, alias = self._table_ref()
        joins: List[JoinClause] = []
        while self._match_keyword("join"):
            joins.append(self._join_clause())
        where = None
        if self._match_keyword("where"):
            where = self._predicate()
        group_by: Tuple[str, ...] = ()
        if self._match_keyword("group"):
            self._expect_keyword("by")
            names = [self._group_name()]
            while self._match_symbol(","):
                names.append(self._group_name())
            group_by = tuple(names)
        having = None
        if self._match_keyword("having"):
            if not group_by:
                raise self._error("HAVING requires GROUP BY in this dialect")
            having = self._predicate()
        order_by: Tuple[OrderItem, ...] = ()
        if self._match_keyword("order"):
            self._expect_keyword("by")
            orders = [self._order_item()]
            while self._match_symbol(","):
                orders.append(self._order_item())
            order_by = tuple(orders)
        limit = None
        if self._match_keyword("limit"):
            limit = self._expect_number("LIMIT")
        offset = None
        if self._match_keyword("offset"):
            offset = self._expect_number("OFFSET")
        return SelectStmt(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
            offset=offset,
            alias=alias,
        )

    def _table_ref(self) -> Tuple[str, Optional[str]]:
        name = self._expect_ident("table name")
        alias = None
        if self._match_keyword("as"):
            alias = self._expect_ident("table alias")
        elif (
            self._cur.kind is TokenKind.IDENT
            and self._cur.text not in _TABLE_STOP
        ):
            alias = self._advance().text
        return name, alias

    def _group_name(self) -> str:
        # Accept an optional qualifier; grouping keys are bare column
        # names downstream (bound columns are unambiguous by then).
        name = self._expect_ident("GROUP BY column")
        if self._match_symbol("."):
            name = self._expect_ident("column name")
        return name

    def _join_clause(self) -> JoinClause:
        table, alias = self._table_ref()
        self._expect_keyword("on")
        left = self._qualified_ref()
        self._expect_symbol("=")
        right = self._qualified_ref()
        return JoinClause(
            table=table,
            left_col=left.name,
            right_col=right.name,
            alias=alias,
            left_qual=left.qualifier,
            right_qual=right.qualifier,
        )

    def _qualified_ref(self) -> ColumnRef:
        first = self._expect_ident("column reference")
        if self._match_symbol("."):
            return ColumnRef(name=self._expect_ident("column name"), qualifier=first)
        return ColumnRef(name=first)

    def _order_item(self) -> OrderItem:
        expr = self._add()
        descending = False
        if self._match_keyword("desc"):
            descending = True
        else:
            self._match_keyword("asc")
        return OrderItem(expr=expr, descending=descending)

    def _select_item(self) -> SelectItem:
        if self._cur.kind is TokenKind.KEYWORD and self._cur.text in Aggregate.FUNCS:
            func = self._advance().text
            self._expect_symbol("(")
            arg: Optional[Expr]
            if func == "count" and self._match_symbol("*"):
                arg = None
            else:
                arg = self._add()
            self._expect_symbol(")")
            expr: object = Aggregate(func=func, arg=arg)
        else:
            expr = self._add()
        alias = None
        if self._match_keyword("as"):
            alias = self._expect_ident("output alias")
        return SelectItem(expr=expr, alias=alias)

    # ------------------------------------------------------------------
    # DML / DDL.
    # ------------------------------------------------------------------
    def _insert(self) -> InsertStmt:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident("table name")
        columns: Optional[Tuple[str, ...]] = None
        if self._match_symbol("("):
            names = [self._expect_ident("column name")]
            while self._match_symbol(","):
                names.append(self._expect_ident("column name"))
            self._expect_symbol(")")
            columns = tuple(names)
        self._expect_keyword("values")
        rows = [self._value_tuple()]
        while self._match_symbol(","):
            rows.append(self._value_tuple())
        return InsertStmt(table=table, columns=columns, rows=tuple(rows))

    def _value_tuple(self) -> Tuple[Expr, ...]:
        self._expect_symbol("(")
        values = [self._add()]
        while self._match_symbol(","):
            values.append(self._add())
        self._expect_symbol(")")
        return tuple(values)

    def _update(self) -> UpdateStmt:
        self._expect_keyword("update")
        table, alias = self._table_ref()
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._match_symbol(","):
            assignments.append(self._assignment())
        where = None
        if self._match_keyword("where"):
            where = self._predicate()
        return UpdateStmt(
            table=table, assignments=tuple(assignments), where=where, alias=alias
        )

    def _assignment(self) -> Tuple[str, Expr]:
        name = self._expect_ident("column name")
        if self._match_symbol("."):
            name = self._expect_ident("column name")
        self._expect_symbol("=")
        return name, self._add()

    def _delete(self) -> DeleteStmt:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table, alias = self._table_ref()
        where = None
        if self._match_keyword("where"):
            where = self._predicate()
        return DeleteStmt(table=table, where=where, alias=alias)

    def _create_table(self) -> CreateTableStmt:
        self._expect_keyword("create")
        self._expect_keyword("table")
        name = self._expect_ident("table name")
        self._expect_symbol("(")
        columns = [self._column_def()]
        while self._match_symbol(","):
            columns.append(self._column_def())
        self._expect_symbol(")")
        return CreateTableStmt(name=name, columns=tuple(columns))

    def _column_def(self) -> Tuple[str, str]:
        name = self._expect_ident("column name")
        tok = self._cur
        if tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise self._error(f"expected a type name, found {tok}")
        type_text = self._advance().text
        if self._match_symbol("("):
            width = self._expect_number(type_text.upper())
            self._expect_symbol(")")
            type_text = f"{type_text}({width})"
        return name, type_text

    # ------------------------------------------------------------------
    # Predicates and expressions.
    # ------------------------------------------------------------------
    def _predicate(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        terms = [self._and_expr()]
        while self._match_keyword("or"):
            terms.append(self._and_expr())
        return terms[0] if len(terms) == 1 else Or(terms=tuple(terms))

    def _and_expr(self) -> Expr:
        terms = [self._not_expr()]
        while self._match_keyword("and"):
            terms.append(self._not_expr())
        return terms[0] if len(terms) == 1 else And(terms=tuple(terms))

    def _not_expr(self) -> Expr:
        if self._cur.is_keyword("not") and not self._peek().is_keyword("in"):
            self._advance()
            return Not(term=self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._add()
        if self._cur.kind is TokenKind.SYMBOL and self._cur.text in _CMP_OPS:
            op = self._advance().text
            right = self._add()
            return Compare(op=op, left=left, right=right)
        if self._match_keyword("between"):
            low = self._add()
            self._expect_keyword("and")
            high = self._add()
            return Between(term=left, low=low, high=high)
        if self._cur.is_keyword("not") and self._peek().is_keyword("in"):
            self._advance()
            self._advance()
            return Not(term=self._in_rest(left))
        if self._match_keyword("in"):
            return self._in_rest(left)
        return left

    def _in_rest(self, term: Expr) -> Expr:
        self._expect_symbol("(")
        if self._cur.is_keyword("select"):
            select = self._select_body()
            self._expect_symbol(")")
            return InSubquery(term=term, select=select)
        values = [self._in_member()]
        while self._match_symbol(","):
            values.append(self._in_member())
        self._expect_symbol(")")
        return InList(term=term, values=tuple(values))

    def _in_member(self):
        tok = self._cur
        expr = self._add()
        if not isinstance(expr, Literal):
            raise self._error("IN list members must be literals", tok)
        return expr.value

    def _add(self) -> Expr:
        left = self._mul()
        while self._cur.kind is TokenKind.SYMBOL and self._cur.text in ("+", "-"):
            op = self._advance().text
            left = BinOp(op=op, left=left, right=self._mul())
        return left

    def _mul(self) -> Expr:
        left = self._atom()
        while self._cur.kind is TokenKind.SYMBOL and self._cur.text in ("*", "/"):
            op = self._advance().text
            left = BinOp(op=op, left=left, right=self._atom())
        return left

    def _atom(self) -> Expr:
        tok = self._cur
        if tok.kind is TokenKind.SYMBOL and tok.text == "-":
            self._advance()
            inner = self._atom()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return BinOp(op="-", left=Literal(0), right=inner)
        if tok.kind is TokenKind.NUMBER:
            self._advance()
            text = tok.text
            return Literal(float(text) if "." in text else int(text))
        if tok.kind is TokenKind.STRING:
            self._advance()
            return Literal(tok.text)
        if tok.is_keyword("date"):
            self._advance()
            if self._cur.kind is not TokenKind.STRING:
                raise self._error(
                    f"expected date string after DATE, found {self._cur}"
                )
            raw = self._advance().text
            try:
                day = datetime.date.fromisoformat(raw)
            except ValueError as exc:
                raise self._error(f"bad date literal {raw!r}: {exc}", tok)
            return Literal((day - _EPOCH).days)
        if tok.is_keyword("interval"):
            self._advance()
            if self._cur.kind is not TokenKind.STRING:
                raise self._error(
                    f"expected quantity after INTERVAL, found {self._cur}"
                )
            qty = int(self._advance().text)
            self._expect_keyword("day")
            return Literal(qty)
        if tok.kind is TokenKind.KEYWORD and tok.text in Aggregate.FUNCS:
            raise self._error(
                f"aggregate {tok.text}() is only allowed in the select "
                "list; filter aggregated values in HAVING via the output "
                "alias"
            )
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if self._match_symbol("."):
                return ColumnRef(
                    name=self._expect_ident("column name"), qualifier=tok.text
                )
            return ColumnRef(name=tok.text)
        if self._match_symbol("("):
            if self._cur.is_keyword("select"):
                select = self._select_body()
                self._expect_symbol(")")
                return ScalarSubquery(select=select)
            inner = self._predicate()
            self._expect_symbol(")")
            return inner
        raise self._error(f"unexpected token {tok}")


def parse(sql: str) -> SelectStmt:
    """Parse one ``SELECT`` statement."""
    return Parser(sql).parse_select()


def parse_statement(sql: str):
    """Parse one statement of any supported kind (the pipeline entry)."""
    return Parser(sql).parse_statement()
