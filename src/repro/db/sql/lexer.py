"""Hand-rolled SQL lexer for the supported subset.

Produces a flat token list; the recursive-descent parser walks it with
one token of lookahead. Keywords are case-insensitive; identifiers are
lowercased (the catalog is lowercase-normalized).

Every token carries its character offset *and* 1-based line/column, so
lexer and parser errors can point at the exact spot with a caret-annotated
snippet (:func:`error_at`). String literals support the standard ``''``
escape; an unclosed quote is a hard error located at the opening quote.

Two text-normalization helpers serve the statement pipeline:
:func:`normalize_sql` canonicalizes whitespace/case (the parse/bind memo
key), and :func:`statement_shape` additionally blanks literals to ``?``
(the code-fragment-cache prefix, shared across literal values).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import SqlError


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "having", "limit",
    "as", "and", "or", "not", "between", "asc", "desc", "join", "on", "distinct",
    "sum", "avg", "count", "min", "max", "date", "interval", "day",
    # Statement surface beyond SELECT.
    "offset", "in", "insert", "into", "values", "update", "set", "delete",
    "create", "table", "drop", "begin", "commit", "rollback", "abort",
    "explain", "analyze",
}

_SYMBOLS = (
    "<=", ">=", "<>", "!=", "(", ")", ",", "*", "+", "-", "/", "=",
    "<", ">", ".", ";",
)


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int
    line: int = 1
    column: int = 1

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __str__(self) -> str:
        return f"{self.text!r}" if self.kind is not TokenKind.EOF else "end of input"


def caret_snippet(sql: str, position: int) -> str:
    """The source line containing ``position`` with a ``^`` marker under it."""
    position = min(max(position, 0), len(sql))
    start = sql.rfind("\n", 0, position) + 1
    end = sql.find("\n", position)
    if end < 0:
        end = len(sql)
    line = sql[start:end]
    return f"  {line}\n  {' ' * (position - start)}^"


def location_of(sql: str, position: int) -> "tuple[int, int]":
    """1-based (line, column) of a character offset in ``sql``."""
    position = min(max(position, 0), len(sql))
    line = sql.count("\n", 0, position) + 1
    column = position - (sql.rfind("\n", 0, position) + 1) + 1
    return line, column


def error_at(message: str, sql: str, position: int) -> SqlError:
    """Build a :class:`SqlError` carrying location + caret snippet."""
    line, column = location_of(sql, position)
    return SqlError(
        f"{message} (line {line}, column {column})\n"
        f"{caret_snippet(sql, position)}",
        line=line,
        column=column,
    )


def tokenize(sql: str) -> List[Token]:
    """Split ``sql`` into tokens, raising :class:`SqlError` on garbage."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    line = 1
    bol = 0  # index of the current line's first character

    def _tok(kind: TokenKind, text: str, start: int) -> Token:
        return Token(kind, text, start, line, start - bol + 1)

    def _consume_newlines(start: int, end: int) -> None:
        nonlocal line, bol
        at = sql.find("\n", start, end)
        while at >= 0:
            line += 1
            bol = at + 1
            at = sql.find("\n", at + 1, end)

    while i < n:
        ch = sql[i]
        if ch == "\n":
            line += 1
            i += 1
            bol = i
            continue
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql[i : i + 2] == "--":
            newline = sql.find("\n", i)
            if newline < 0:
                i = n
            else:
                i = newline + 1
                line += 1
                bol = i
            continue
        if ch == "'":
            start = i
            pieces: List[str] = []
            j = i + 1
            while True:
                end = sql.find("'", j)
                if end < 0:
                    raise error_at("unterminated string literal", sql, start)
                pieces.append(sql[j:end])
                if sql[end + 1 : end + 2] == "'":  # '' escapes one quote
                    pieces.append("'")
                    j = end + 2
                    continue
                j = end + 1
                break
            tokens.append(_tok(TokenKind.STRING, "".join(pieces), start))
            _consume_newlines(start, j)
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                seen_dot = seen_dot or sql[j] == "."
                j += 1
            tokens.append(_tok(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(_tok(kind, word, i))
            i = j
            continue
        for sym in _SYMBOLS:
            if sql.startswith(sym, i):
                canonical = "<>" if sym == "!=" else sym
                tokens.append(_tok(TokenKind.SYMBOL, canonical, i))
                i += len(sym)
                break
        else:
            raise error_at(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(TokenKind.EOF, "", n, line, n - bol + 1))
    return tokens


def _render(tok: Token, blank_literals: bool) -> str:
    if tok.kind is TokenKind.STRING:
        if blank_literals:
            return "?"
        return "'" + tok.text.replace("'", "''") + "'"
    if tok.kind is TokenKind.NUMBER and blank_literals:
        return "?"
    return tok.text


def normalize_sql(sql: str) -> str:
    """Canonical statement text: lowercased keywords/identifiers, single
    spaces, comments stripped. Two statements differing only in case or
    whitespace normalize identically — the parse/bind memo key."""
    return " ".join(
        _render(t, blank_literals=False) for t in tokenize(sql)[:-1]
    )


def statement_shape(sql: str) -> str:
    """Like :func:`normalize_sql` but with every literal blanked to ``?``:
    the textual half of a code-fragment-cache key, shared by statements
    that differ only in constants."""
    return " ".join(
        _render(t, blank_literals=True) for t in tokenize(sql)[:-1]
    )
