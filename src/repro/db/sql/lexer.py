"""Hand-rolled SQL lexer for the supported subset.

Produces a flat token list; the recursive-descent parser walks it with
one token of lookahead. Keywords are case-insensitive; identifiers are
lowercased (the catalog is lowercase-normalized).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import SqlError


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "having", "limit",
    "as", "and", "or", "not", "between", "asc", "desc", "join", "on", "distinct",
    "sum", "avg", "count", "min", "max", "date", "interval", "day",
}

_SYMBOLS = ("<=", ">=", "<>", "!=", "(", ")", ",", "*", "+", "-", "/", "=", "<", ">", ".")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __str__(self) -> str:
        return f"{self.text!r}"


def tokenize(sql: str) -> List[Token]:
    """Split ``sql`` into tokens, raising :class:`SqlError` on garbage."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and sql[i : i + 2] == "--":
            newline = sql.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise SqlError(f"unterminated string literal at offset {i}")
            tokens.append(Token(TokenKind.STRING, sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (sql[j].isdigit() or (sql[j] == "." and not seen_dot)):
                seen_dot = seen_dot or sql[j] == "."
                j += 1
            tokens.append(Token(TokenKind.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j].lower()
            kind = TokenKind.KEYWORD if word in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, word, i))
            i = j
            continue
        for sym in _SYMBOLS:
            if sql.startswith(sym, i):
                canonical = "<>" if sym == "!=" else sym
                tokens.append(Token(TokenKind.SYMBOL, canonical, i))
                i += len(sym)
                break
        else:
            raise SqlError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
