"""Differential SQL fuzzing: every engine, one answer, or a violation.

One seeded run drives a random statement stream — DML (autocommit and
explicit transactions), joins, grouping, subqueries, DISTINCT,
ORDER BY/LIMIT/OFFSET — through four independent evaluations:

- the **vector** engine (the primary; all DML flows through it),
- the **volcano** engine (a second session over the same catalog),
- a **twin vector** session (same mode, fresh engine — its ledger
  buckets must match the primary's exactly, the determinism check),
- the :class:`~repro.db.sql.oracle.SqlOracle` (dict rows, no numpy,
  no shared executor code).

Every SELECT must come back *byte-identical* between the engine modes
(same dtypes, same column bytes), with bucket-identical cost ledgers
between the vector twins, and value-identical to the oracle. Statements
that fit the scatter-gather dialect additionally run through a real
:class:`~repro.dist.ShardCluster` (inline workers over a range-sharded
copy of the visible rows) and must merge to the same groups.

With ``crash_points > 0`` the run attaches a WAL, journals the oracle's
visible rows at every commit offset, and replays the chaos crash-point
checker over record boundaries and torn tails — SQL-issued DML must
survive crash/recovery exactly like the native MVCC workload does.

``python -m repro.chaos --mode sql-fuzz`` wraps this for CI;
``tests/test_sql_fuzz.py`` drives the same entry point under hypothesis.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.mvcc_filter import visible_mask
from repro.db.catalog import Catalog
from repro.db.mvcc import TransactionManager
from repro.db.plan.binder import bind
from repro.db.schema import Column, TableSchema
from repro.db.sharding import ShardedTable
from repro.db.sql.oracle import SqlOracle
from repro.db.sql.parser import parse_statement
from repro.db.sql.pipeline import Session
from repro.db.types import CHAR, INT32
from repro.db.wal import SsdLog, WriteAheadLog
from repro.dist import DistConfig, ShardCluster, dist_plan_for
from repro.errors import PlanError, ReproError

TAGS = ("ash", "birch", "cedar", "elm", "fir", "oak", "pine")

#: The mutable table every DML statement targets.
T_COLUMNS = ("id", "v", "w", "tag")
#: The static side table joins and IN-subqueries pull from.
U_COLUMNS = ("uk", "uv", "utag")


@dataclass
class GenStatement:
    """One generated statement plus routing hints for the harness."""

    sql: str
    #: Worth attempting a scatter-gather translation (single-table
    #: aggregate, no subqueries, no ORDER BY) — the translation itself
    #: may still bail with PlanError (e.g. CHAR predicates).
    dist_ok: bool = False
    has_subquery: bool = False


@dataclass
class SqlFuzzReport:
    """Outcome of one seeded differential run (the CI artifact)."""

    seed: int
    steps: int
    selects: int = 0
    dml_statements: int = 0
    txn_blocks: int = 0
    rollbacks: int = 0
    rows_checked: int = 0
    subquery_selects: int = 0
    dist_checked: int = 0
    commits: int = 0
    crash_boundary_points: int = 0
    crash_torn_points: int = 0
    violations: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {**self.__dict__, "passed": self.passed}


# ----------------------------------------------------------------------
# Statement generation.
# ----------------------------------------------------------------------
class StatementGen:
    """Seeded SQL source: every statement it emits is valid (error paths
    have their own tests — a differential fuzzer wants both sides to
    *answer*, not to agree on refusals)."""

    def __init__(self, rng: random.Random, side_table: bool = True):
        self.rng = rng
        self.side_table = side_table

    # -- values ---------------------------------------------------------
    def _int(self, lo: int = -50, hi: int = 200) -> int:
        return self.rng.randrange(lo, hi)

    def _tag(self) -> str:
        return self.rng.choice(TAGS)

    def _row(self) -> str:
        return (
            f"({self._int(0, 100)}, {self._int()}, {self._int()}, "
            f"'{self._tag()}')"
        )

    # -- DML ------------------------------------------------------------
    def insert(self) -> str:
        rows = ", ".join(self._row() for _ in range(self.rng.randrange(1, 4)))
        return f"INSERT INTO t (id, v, w, tag) VALUES {rows}"

    def update(self) -> str:
        sets = self.rng.choice(
            (
                f"v = v + {self._int(1, 9)}",
                f"w = {self._int()}",
                f"tag = '{self._tag()}'",
                f"v = v - w, w = w + {self._int(1, 5)}",
            )
        )
        return f"UPDATE t SET {sets} WHERE {self._narrow_predicate()}"

    def delete(self) -> str:
        return f"DELETE FROM t WHERE {self._narrow_predicate()}"

    def _narrow_predicate(self) -> str:
        """A predicate that usually hits only a few rows, so the table
        neither empties out nor explodes."""
        pick = self.rng.random()
        if pick < 0.5:
            return f"id = {self._int(0, 100)}"
        if pick < 0.75:
            a = self._int()
            return f"v BETWEEN {a} AND {a + self.rng.randrange(2, 12)}"
        return f"tag = '{self._tag()}' AND w < {self._int(-40, 30)}"

    # -- predicates -----------------------------------------------------
    def _leaf(self, scope: Sequence[str]) -> Tuple[str, bool]:
        """One atomic predicate; returns (sql, uses_subquery)."""
        col = self.rng.choice([c for c in scope if c not in ("tag", "utag")])
        pick = self.rng.random()
        if pick < 0.35:
            op = self.rng.choice(("<", "<=", ">", ">=", "=", "<>"))
            return f"{col} {op} {self._int()}", False
        if pick < 0.5:
            a = self._int()
            return f"{col} BETWEEN {a} AND {a + self.rng.randrange(0, 60)}", False
        if pick < 0.6:
            vals = ", ".join(
                str(self._int()) for _ in range(self.rng.randrange(1, 5))
            )
            return f"{col} IN ({vals})", False
        if pick < 0.72 and "tag" in scope:
            op = self.rng.choice(("=", "<>"))
            return f"tag {op} '{self._tag()}'", False
        if pick < 0.86:
            agg = self.rng.choice(("max(v)", "min(w)", "avg(v)", "count(*)"))
            op = self.rng.choice(("<", "<=", ">", ">="))
            return f"{col} {op} (SELECT {agg} FROM t)", True
        if self.side_table:
            inner_col = self.rng.choice(("uk", "uv"))
            return (
                f"{col} IN (SELECT {inner_col} FROM u "
                f"WHERE uv > {self._int()})",
                True,
            )
        return f"{col} IN (SELECT w FROM t WHERE v > {self._int()})", True

    def predicate(self, scope: Sequence[str], depth: int = 2) -> Tuple[str, bool]:
        if depth == 0 or self.rng.random() < 0.45:
            return self._leaf(scope)
        pick = self.rng.random()
        a, sa = self.predicate(scope, depth - 1)
        if pick < 0.2:
            return f"NOT ({a})", sa
        b, sb = self.predicate(scope, depth - 1)
        junct = "AND" if pick < 0.65 else "OR"
        return f"({a}) {junct} ({b})", sa or sb

    # -- SELECT shapes --------------------------------------------------
    def _scalar_items(self, scope: Sequence[str]) -> Tuple[List[str], bool]:
        items: List[str] = []
        sub = False
        for i in range(self.rng.randrange(1, 4)):
            pick = self.rng.random()
            if pick < 0.45:
                expr = self.rng.choice(scope)
            elif pick < 0.65:
                expr = f"v + {self._int(1, 20)}" if "v" in scope else "uv"
            elif pick < 0.8:
                expr = "v * w" if "v" in scope else "uk + uv"
            elif pick < 0.9:
                expr = "v - w" if "v" in scope else "uv - uk"
            else:
                agg = self.rng.choice(("max(v)", "sum(w)", "count(*)"))
                expr = f"(SELECT {agg} FROM t)"
                sub = True
            items.append(f"{expr} AS c{i}")
        return items, sub

    def select(self) -> GenStatement:
        shape = self.rng.random()
        if shape < 0.3:
            return self._select_aggregate()
        if shape < 0.45 and self.side_table:
            return self._select_join()
        if shape < 0.58:
            return self._select_distinct()
        return self._select_plain()

    def _order_all(self, n: int) -> str:
        keys = ", ".join(
            f"c{i}{' DESC' if self.rng.random() < 0.3 else ''}"
            for i in range(n)
        )
        return f" ORDER BY {keys}"

    def _limit_clause(self) -> str:
        if self.rng.random() < 0.35:
            off = (
                f" OFFSET {self.rng.randrange(0, 6)}"
                if self.rng.random() < 0.4
                else ""
            )
            return f" LIMIT {self.rng.randrange(1, 12)}{off}"
        return ""

    def _select_plain(self) -> GenStatement:
        items, sub = self._scalar_items(T_COLUMNS)
        where, wsub = self._maybe_where(T_COLUMNS)
        sql = (
            f"SELECT {', '.join(items)} FROM t{where}"
            f"{self._order_all(len(items))}{self._limit_clause()}"
        )
        return GenStatement(sql, has_subquery=sub or wsub)

    def _select_distinct(self) -> GenStatement:
        cols = self.rng.sample(T_COLUMNS, self.rng.randrange(1, 3))
        items = [f"{c} AS c{i}" for i, c in enumerate(cols)]
        where, wsub = self._maybe_where(T_COLUMNS)
        sql = (
            f"SELECT DISTINCT {', '.join(items)} FROM t{where}"
            f"{self._order_all(len(items))}{self._limit_clause()}"
        )
        return GenStatement(sql, has_subquery=wsub)

    def _select_join(self) -> GenStatement:
        on = self.rng.choice(("id = uk", "v = uv"))
        scope = T_COLUMNS + U_COLUMNS
        if self.rng.random() < 0.35:
            agg = self.rng.choice(("sum(v)", "count(*)", "min(uv)", "sum(uv * w)"))
            items = ["tag AS c0", f"{agg} AS c1"]
            where, wsub = self._maybe_where(scope)
            sql = (
                f"SELECT {', '.join(items)} FROM t JOIN u ON {on}{where} "
                f"GROUP BY tag"
            )
            return GenStatement(sql, has_subquery=wsub)
        items, sub = self._scalar_items(scope)
        where, wsub = self._maybe_where(scope)
        sql = (
            f"SELECT {', '.join(items)} FROM t JOIN u ON {on}{where}"
            f"{self._order_all(len(items))}{self._limit_clause()}"
        )
        return GenStatement(sql, has_subquery=sub or wsub)

    def _select_aggregate(self) -> GenStatement:
        group = self.rng.choice(((), ("tag",), ("id",), ("tag", "w")))
        aggs = self.rng.sample(
            (
                "count(*)",
                "sum(v)",
                "sum(v * w)",
                "sum(2 * v)",
                "min(v)",
                "max(w)",
                "avg(v)",
            ),
            self.rng.randrange(1, 4),
        )
        items = [f"{g} AS c{i}" for i, g in enumerate(group)]
        items += [f"{a} AS c{i + len(group)}" for i, a in enumerate(aggs)]
        where, wsub = self._maybe_where(T_COLUMNS)
        sql = f"SELECT {', '.join(items)} FROM t{where}"
        if group:
            sql += f" GROUP BY {', '.join(group)}"
        having = ""
        if group and self.rng.random() < 0.3:
            target = f"c{len(group)}"
            having = f" HAVING {target} {self.rng.choice(('>', '<='))} {self._int()}"
            sql += having
        order = ""
        if self.rng.random() < 0.5:
            n = len(group) + len(aggs)
            picks = self.rng.sample(range(n), self.rng.randrange(1, n + 1))
            order = " ORDER BY " + ", ".join(
                f"c{i}{' DESC' if self.rng.random() < 0.3 else ''}"
                for i in picks
            )
            sql += order + self._limit_clause()
        dist_ok = bool(group) and not order and not having and not wsub and (
            "avg(v)" not in aggs
        )
        return GenStatement(sql, dist_ok=dist_ok, has_subquery=wsub)

    def _maybe_where(self, scope: Sequence[str]) -> Tuple[str, bool]:
        if self.rng.random() < 0.3:
            return "", False
        pred, sub = self.predicate(scope, depth=self.rng.randrange(0, 3))
        return f" WHERE {pred}", sub


# ----------------------------------------------------------------------
# Value comparison.
# ----------------------------------------------------------------------
def _values_equal(a, b) -> bool:
    if (
        isinstance(a, float)
        and isinstance(b, float)
        and math.isnan(a)
        and math.isnan(b)
    ):
        return True
    return a == b


def _rows_equal(a: Sequence[Tuple], b: Sequence[Tuple]) -> bool:
    if len(a) != len(b):
        return False
    for ra, rb in zip(a, b):
        if len(ra) != len(rb):
            return False
        if not all(_values_equal(x, y) for x, y in zip(ra, rb)):
            return False
    return True


def _decode(value):
    if isinstance(value, bytes):
        return value.rstrip(b"\x00").decode()
    if isinstance(value, np.generic):
        return value.item()
    return value


# ----------------------------------------------------------------------
# The harness.
# ----------------------------------------------------------------------
class _Harness:
    def __init__(self, seed: int, crash: bool, side_table: bool, recorder=None):
        self.report: Optional[SqlFuzzReport] = None  # set by run_sql_fuzz
        self.rng = random.Random(seed)
        self.wal = WriteAheadLog(device=SsdLog()) if crash else None
        self.catalog = Catalog()
        self.manager = TransactionManager(wal=self.wal)
        self.primary = Session(
            catalog=self.catalog, manager=self.manager, exec_mode="vector",
            journal=recorder,
        )
        self.volcano = Session(
            catalog=self.catalog, manager=self.manager, exec_mode="volcano",
            journal=recorder,
        )
        self.twin = Session(
            catalog=self.catalog, manager=self.manager, exec_mode="vector",
            journal=recorder,
        )
        self.oracle = SqlOracle()
        self.gen = StatementGen(self.rng, side_table=side_table)
        #: (durable offset, frozen visible rows) after each commit.
        self.journal_commits: List[Tuple[int, List[Tuple]]] = []

        ddl = "CREATE TABLE t (id INT32, v INT32, w INT32, tag CHAR(8))"
        self.primary.execute(ddl)
        self.oracle.execute(ddl)
        if side_table:
            self._build_side_table()

    def _build_side_table(self) -> None:
        schema = TableSchema(
            "u",
            [Column("uk", INT32), Column("uv", INT32), Column("utag", CHAR(8))],
        )
        table = self.catalog.create_table(schema)
        rows = []
        for _ in range(self.rng.randrange(8, 25)):
            row = {
                "uk": self.gen._int(0, 100),
                "uv": self.gen._int(),
                "utag": self.gen._tag(),
            }
            table.append_row(row)
            rows.append(row)
        self.oracle.load("u", U_COLUMNS, rows)

    # -- state capture for the crash journal ----------------------------
    def frozen_oracle_rows(self) -> List[Tuple]:
        # Oracle rows are already in ``table.row()``'s value space
        # (decoded str for CHAR, Python ints), so freezing is just
        # key-sorting each dict — the same shape ``_freeze`` produces.
        return sorted(
            tuple(sorted(r.items())) for r in self.oracle.tables["t"].rows
        )

    def journal_commit(self) -> None:
        if self.wal is not None:
            self.journal_commits.append(
                (self.wal.durable_bytes, self.frozen_oracle_rows())
            )

    # -- one step -------------------------------------------------------
    def step(self) -> None:
        roll = self.rng.random()
        if roll < 0.45:
            self.check_select(self.gen.select())
        elif roll < 0.93:
            self.run_dml(self.rng.choice(
                (self.gen.insert, self.gen.update, self.gen.delete)
            )())
        else:
            self.run_txn_block()
        # Keep the working set bounded so seeds stay fast.
        if len(self.oracle.tables["t"].rows) > 400:
            self.run_dml("DELETE FROM t WHERE id < 50")

    def run_dml(self, sql: str) -> None:
        report = self.report
        result = self.primary.execute(sql)
        expected = self.oracle.execute(sql)
        if result.rows_affected != expected:
            report.violations.append(
                f"{sql!r}: engine affected {result.rows_affected} rows, "
                f"oracle {expected}"
            )
        report.dml_statements += 1
        report.commits += 1
        self.journal_commit()

    def run_txn_block(self) -> None:
        report = self.report
        sql = self.rng.choice((self.gen.insert, self.gen.update, self.gen.delete))()
        commit = self.rng.random() < 0.7
        for stmt in ("BEGIN", sql, "COMMIT" if commit else "ROLLBACK"):
            self.primary.execute(stmt)
            self.oracle.execute(stmt)
        report.txn_blocks += 1
        if commit:
            report.commits += 1
            self.journal_commit()
        else:
            report.rollbacks += 1

    def check_select(self, gen: GenStatement) -> None:
        report = self.report
        sql = gen.sql
        try:
            primary = self.primary.execute(sql)
            vol = self.volcano.execute(sql)
            twin = self.twin.execute(sql)
        except ReproError as exc:
            report.violations.append(f"{sql!r}: engine raised {exc}")
            return
        try:
            names_o, rows_o = self.oracle.execute(sql)
        except ReproError as exc:
            report.violations.append(f"{sql!r}: oracle raised {exc}")
            return
        report.selects += 1
        if gen.has_subquery:
            report.subquery_selects += 1

        # Engine-to-engine byte identity (vector vs volcano).
        pr, vr = primary.result, vol.result
        if pr.names != vr.names:
            report.violations.append(
                f"{sql!r}: vector names {pr.names} != volcano {vr.names}"
            )
            return
        for name in pr.names:
            a, b = pr.columns[name], vr.columns[name]
            if a.dtype != b.dtype or a.tobytes() != b.tobytes():
                report.violations.append(
                    f"{sql!r}: column {name!r} differs between vector "
                    f"({a.dtype}) and volcano ({b.dtype})"
                )
                return

        # Determinism: the vector twin's cost ledger bucket-for-bucket.
        pb = primary.execution.ledger.buckets
        tb = twin.execution.ledger.buckets
        if pb != tb:
            report.violations.append(
                f"{sql!r}: vector ledger buckets differ between twins: "
                f"{pb} != {tb}"
            )

        # Value identity against the oracle.
        rows_e = primary.rows
        if tuple(names_o) != pr.names:
            report.violations.append(
                f"{sql!r}: oracle names {names_o} != engine {pr.names}"
            )
            return
        if not _rows_equal(rows_e, rows_o):
            report.violations.append(
                f"{sql!r}: engine rows {rows_e[:5]}... != oracle {rows_o[:5]}..."
                f" ({len(rows_e)} vs {len(rows_o)} rows)"
            )
            return
        report.rows_checked += len(rows_e)

        if gen.dist_ok:
            self.check_dist(sql, rows_e)

    # -- the scatter-gather leg -----------------------------------------
    def check_dist(self, sql: str, rows_e: List[Tuple]) -> None:
        report = self.report
        bound = bind(parse_statement(sql), self.catalog)
        try:
            plan = dist_plan_for(bound, "id")
        except PlanError:
            return  # outside the dist dialect (e.g. CHAR predicates)
        table = self.catalog.table("t")
        mask = visible_mask(table.begin_ts, table.end_ts, self.manager.now)
        columns = {
            c.name: table.column_values(c.name)[mask]
            for c in table.schema.user_columns
        }
        shard_schema = TableSchema(
            "t", [Column(c.name, c.dtype) for c in table.schema.user_columns]
        )
        n_shards = self.rng.randrange(2, 5)
        boundaries = sorted(
            self.rng.sample(range(5, 100, 5), n_shards - 1)
        )
        sharded = ShardedTable(shard_schema, "id", boundaries)
        sharded.bulk_load(columns)
        with ShardCluster(sharded, DistConfig(inline=True)) as cluster:
            result = cluster.query(plan)
        expected: List[Tuple] = []
        for key, values in result.groups or []:
            key = tuple(_decode(k) for k in key)
            it = iter(values)
            row = []
            for out in bound.outputs:
                if out.kind == "expr":
                    row.append(key[plan.group_by.index(out.expr.name)])
                else:
                    row.append(next(it))
            expected.append(tuple(row))
        if not _rows_equal(rows_e, expected):
            report.violations.append(
                f"{sql!r}: dist groups {expected[:5]}... != engine "
                f"{rows_e[:5]}... ({len(expected)} vs {len(rows_e)} rows)"
            )
            return
        report.dist_checked += 1


def run_sql_fuzz(
    seed: int,
    steps: int = 60,
    crash_points: int = 0,
    side_table: bool = True,
    recorder=None,
) -> SqlFuzzReport:
    """One seeded differential run; see the module docstring.

    ``crash_points`` > 0 attaches a WAL, journals the oracle's visible
    rows at every commit offset, and probes that many random torn
    offsets on top of every record boundary after the stream finishes.
    (The side table is non-MVCC and never written by DML, so it stays
    out of the WAL and out of the recovery contract.)

    ``recorder`` is an optional :class:`~repro.obs.FlightRecorder`: the
    fuzzed sessions journal every statement error into it, so a crashing
    stream's dump shows the statement sequence that led to the failure.
    """
    t0 = time.perf_counter()
    report = SqlFuzzReport(seed=seed, steps=steps)
    harness = _Harness(
        seed, crash=crash_points > 0, side_table=side_table, recorder=recorder
    )
    harness.report = report
    for _ in range(steps):
        harness.step()
    if crash_points > 0:
        _check_crash_points(harness, report, crash_points)
    harness.primary.close()
    harness.volcano.close()
    harness.twin.close()
    report.seconds = time.perf_counter() - t0
    return report


def _check_crash_points(
    harness: _Harness, report: SqlFuzzReport, torn_offsets: int
) -> None:
    """Crash/recovery over the WAL the SQL statements produced."""
    from repro.chaos import WorkloadJournal, check_crash_point, table_visible_rows
    from repro.db.wal import scan_records

    # Leave one uncommitted SQL transaction in flight so crash images
    # contain intents the recovery must NOT surface.
    harness.primary.execute("BEGIN")
    harness.primary.execute(harness.gen.insert())
    harness.wal.flush()

    table = harness.catalog.table("t")
    journal = WorkloadJournal(
        media=harness.wal.device.media(),
        schemas={"t": table.schema},
        commits=harness.journal_commits,
    )
    journal.final_rows = harness.frozen_oracle_rows()
    live = table_visible_rows(table, harness.manager.now)
    if live != journal.final_rows:
        report.violations.append(
            "pre-crash disagreement: SQL-visible rows != oracle rows"
        )
        return

    records, _ = scan_records(journal.media)
    boundaries = [0] + [end for _, end in records]
    for offset in boundaries:
        report.violations.extend(check_crash_point(journal, offset))
    report.crash_boundary_points = len(boundaries)

    rng = np.random.default_rng(report.seed ^ 0x5EED)
    boundary_set = set(boundaries)
    probed = 0
    for _ in range(torn_offsets * 20):
        if probed >= torn_offsets:
            break
        offset = int(rng.integers(1, len(journal.media)))
        if offset in boundary_set:
            continue
        report.violations.extend(check_crash_point(journal, offset))
        probed += 1
    report.crash_torn_points = probed
