"""The unified statement pipeline: SQL text in, results out.

Every entry point — engines, the serving layer, benchmarks, the REPL,
and the chaos harnesses — can drive the system through one door::

    sql.parse  ->  plan.bind  ->  plan.logical  ->  plan.optimizer
               ->  exec (volcano | vector)                 (SELECT)
               ->  MVCC transaction -> WAL                 (DML)

:class:`Session` owns the pieces: a catalog, one engine (any of the
three — they share the execute contract), a
:class:`~repro.db.mvcc.TransactionManager` (optionally WAL-backed for
durability), and the observability hooks. Each statement runs under
``sql.parse`` / ``sql.bind`` / ``sql.plan`` / ``sql.exec`` spans and
feeds the ``sql_*`` metrics collector, so an EXPLAIN ANALYZE of any
statement renders the full span tree down to the storage probes.

Statement semantics:

* ``SELECT`` binds and executes on the session engine at the current
  snapshot (or the open transaction's snapshot). Scalar and ``IN``
  subqueries (uncorrelated) are *folded* first: the inner SELECT runs
  through the same pipeline and its result is substituted as a constant.
* ``INSERT``/``UPDATE``/``DELETE`` bind to MVCC write plans. Outside an
  explicit transaction each statement autocommits via
  :func:`~repro.db.mvcc.run_transaction` (conflict retries included);
  inside ``BEGIN``/``COMMIT`` the writes join the open transaction.
  Reads-your-own-writes inside an open transaction is not supported —
  the engines evaluate visibility from committed timestamps only.
* ``CREATE TABLE`` makes an MVCC table (DML needs the version stamps);
  ``DROP TABLE`` removes it.
* ``EXPLAIN`` renders the logical plan with the optimizer's chosen
  access path; ``EXPLAIN ANALYZE`` executes the statement and renders
  the recorded span tree (requires a tracer-enabled session).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.db.catalog import Catalog
from repro.db.expr import (
    And,
    Between,
    BinOp,
    Compare,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.db.mvcc import Transaction, TransactionManager, run_transaction
from repro.db.plan.binder import (
    BoundDelete,
    BoundInsert,
    BoundUpdate,
    bind,
    bind_delete,
    bind_insert,
    bind_update,
)
from repro.db.plan.logical import explain
from repro.db.plan.optimizer import Optimizer
from repro.db.schema import Column, TableSchema
from repro.db.sql.nodes import (
    Aggregate,
    BeginStmt,
    CommitStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    InSubquery,
    RollbackStmt,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    UpdateStmt,
)
from repro.db.sql.parser import parse_statement
from repro.db.types import parse_type
from repro.errors import ReproError, SchemaError, SqlError
from repro.faults import RetryPolicy
from repro.obs import MetricsRegistry, Span, Trace, Tracer, maybe_span

#: Maximum subquery nesting (uncorrelated folding recursion guard).
MAX_SUBQUERY_DEPTH = 8


@dataclass
class SqlStats:
    """Cumulative per-session statement accounting (collector-sampled)."""

    statements: int = 0
    selects: int = 0
    inserts: int = 0
    updates: int = 0
    deletes: int = 0
    ddl: int = 0
    txn_control: int = 0
    explains: int = 0
    errors: int = 0
    rows_returned: int = 0
    rows_written: int = 0
    subqueries_folded: int = 0


@dataclass
class StatementResult:
    """What one statement produced, whatever its kind."""

    kind: str
    sql: str
    #: SELECT answer (None for DML/DDL/transaction control).
    result: Optional[Any] = None
    #: The engine's full execution record for SELECTs.
    execution: Optional[Any] = None
    #: Rows inserted/updated/deleted by DML.
    rows_affected: int = 0
    #: EXPLAIN text (logical plan or rendered span tree).
    plan: Optional[str] = None
    #: Total simulated cycles attributed to the statement (including
    #: folded subqueries and WAL flushes charged by the engine ledger).
    cycles: float = 0.0
    #: Span tree of the statement (tracer-enabled sessions only).
    trace: Optional[Trace] = None

    @property
    def rows(self) -> List[tuple]:
        return self.result.rows() if self.result is not None else []

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self.result.names) if self.result is not None else ()


class Session:
    """One SQL front-door session over a catalog + engine + MVCC manager.

    ``Session(wal=WriteAheadLog(...))`` makes every DML statement
    durable; :func:`repro.db.wal.recover` replays the committed SQL
    workload after a crash.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        engine=None,
        manager: Optional[TransactionManager] = None,
        *,
        wal=None,
        platform=None,
        exec_mode: str = "vector",
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        codecache=None,
        retry_policy: Optional[RetryPolicy] = None,
        journal=None,
    ):
        if engine is not None and catalog is not None \
                and engine.catalog is not catalog:
            raise SqlError("engine and session must share one catalog")
        self.catalog = (
            catalog if catalog is not None
            else (engine.catalog if engine is not None else Catalog())
        )
        if engine is None:
            from repro.db.engines.rowstore import RowStoreEngine

            engine = RowStoreEngine(
                self.catalog,
                platform,
                tracer=tracer,
                metrics=metrics,
                exec_mode=exec_mode,
                codecache=codecache,
            )
        self.engine = engine
        self.tracer = tracer if tracer is not None else engine.tracer
        self.metrics = metrics if metrics is not None else engine.metrics
        if manager is None:
            manager = TransactionManager(
                wal=wal, tracer=self.tracer, metrics=self.metrics
            )
        elif wal is not None and manager.wal is None:
            raise SqlError("pass the WAL through the manager, not both")
        self.manager = manager
        self.optimizer = Optimizer(self.catalog, engine.platform)
        self.retry_policy = retry_policy
        from repro.obs.journal import active_journal

        #: Flight recorder: statement errors are journaled (kind
        #: ``sql.error``) so a fuzz crash's black box shows the failing
        #: statement sequence, not just the final exception.
        self.journal = active_journal(journal)
        if self.journal is not None and self.manager.wal is not None:
            self.manager.wal.attach_journal(self.journal)
        self.stats = SqlStats()
        #: Span tree of the most recent statement (tracer sessions).
        self.last_trace: Optional[Trace] = None
        self._txn: Optional[Transaction] = None
        self._sub_cycles = 0.0
        self._sub_depth = 0
        if self.metrics is not None:
            from repro.obs.collectors import register_sql

            register_sql(self.metrics, self)
            self._m_cycles = self.metrics.histogram(
                "sql_statement_cycles",
                "Simulated cycles per SQL statement",
                first_bound=1024.0,
            )
        else:
            self._m_cycles = None

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def execute(self, sql: str) -> StatementResult:
        """Run one statement of any supported kind."""
        self._sub_cycles = 0.0
        root = None
        try:
            with maybe_span(self.tracer, "sql.statement", layer="sql") as span:
                root = span
                with maybe_span(self.tracer, "sql.parse", layer="sql") as ps:
                    stmt = parse_statement(sql)
                    ps.set_attrs(kind=type(stmt).__name__)
                out = self._dispatch(stmt, sql)
                span.set_attrs(kind=out.kind, rows=out.rows_affected)
        except ReproError as exc:
            self.stats.errors += 1
            if self.journal is not None:
                self.journal.record(
                    "sql.error",
                    error=type(exc).__name__,
                    message=str(exc)[:200],
                    sql=sql[:200],
                )
            raise
        self.stats.statements += 1
        out.cycles += self._sub_cycles
        if isinstance(root, Span):
            self.last_trace = Trace(root)
            out.trace = self.last_trace
        if self._m_cycles is not None:
            self._m_cycles.observe(out.cycles)
        return out

    def run_script(self, script: str) -> List[StatementResult]:
        """Execute ``;``-separated statements, returning one result each."""
        return [self.execute(text) for text in split_statements(script)]

    def close(self) -> None:
        """Abort any open transaction (end-of-session hygiene)."""
        if self._txn is not None:
            self.manager.abort(self._txn)
            self._txn = None

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def _dispatch(self, stmt, sql: str) -> StatementResult:
        if isinstance(stmt, SelectStmt):
            return self._execute_select(stmt, sql)
        if isinstance(stmt, (InsertStmt, UpdateStmt, DeleteStmt)):
            return self._execute_dml(stmt, sql)
        if isinstance(stmt, CreateTableStmt):
            return self._execute_create(stmt, sql)
        if isinstance(stmt, DropTableStmt):
            try:
                self.catalog.drop_table(stmt.name)
            except SchemaError as exc:
                raise SqlError(str(exc))
            self.stats.ddl += 1
            return StatementResult(kind="drop", sql=sql)
        if isinstance(stmt, BeginStmt):
            if self._txn is not None:
                raise SqlError("a transaction is already open")
            self._txn = self.manager.begin()
            self.stats.txn_control += 1
            return StatementResult(kind="begin", sql=sql)
        if isinstance(stmt, CommitStmt):
            if self._txn is None:
                raise SqlError("no open transaction to COMMIT")
            txn, self._txn = self._txn, None
            self.manager.commit(txn)  # WriteConflictError propagates
            self.stats.txn_control += 1
            return StatementResult(kind="commit", sql=sql)
        if isinstance(stmt, RollbackStmt):
            if self._txn is None:
                raise SqlError("no open transaction to ROLLBACK")
            txn, self._txn = self._txn, None
            self.manager.abort(txn)
            self.stats.txn_control += 1
            return StatementResult(kind="rollback", sql=sql)
        if isinstance(stmt, ExplainStmt):
            return self._execute_explain(stmt, sql)
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    # ------------------------------------------------------------------
    # SELECT.
    # ------------------------------------------------------------------
    def _snapshot_for(self, table) -> Optional[int]:
        if not table.schema.mvcc:
            return None
        if self._txn is not None:
            return self._txn.start_ts
        return self.manager.now

    def _execute_select(self, stmt: SelectStmt, sql: str) -> StatementResult:
        stmt = self._fold_subqueries(stmt)
        with maybe_span(self.tracer, "sql.bind", layer="sql") as bs:
            bound = bind(stmt, self.catalog)
            bs.set_attrs(
                table=bound.table.schema.name,
                columns=len(bound.referenced_columns),
            )
        with maybe_span(self.tracer, "sql.plan", layer="sql") as pl:
            decision = self.optimizer.choose(bound)
            pl.set_attrs(access_path=decision.winner)
        with maybe_span(self.tracer, "sql.exec", layer="sql",
                        mode=self.engine.exec_mode):
            execution = self.engine.execute(
                bound, snapshot_ts=self._snapshot_for(bound.table)
            )
        self.stats.selects += 1
        self.stats.rows_returned += execution.result.nrows
        return StatementResult(
            kind="select",
            sql=sql,
            result=execution.result,
            execution=execution,
            plan=execution.plan,
            cycles=execution.cycles,
        )

    # ------------------------------------------------------------------
    # Subquery folding.
    # ------------------------------------------------------------------
    def _fold_subqueries(self, stmt: SelectStmt) -> SelectStmt:
        def fold(expr: Optional[Expr]) -> Optional[Expr]:
            if expr is None:
                return None
            if isinstance(expr, ScalarSubquery):
                return Literal(self._scalar_subquery(expr.select))
            if isinstance(expr, InSubquery):
                return InList(
                    term=fold(expr.term),
                    values=self._in_subquery(expr.select),
                )
            if isinstance(expr, BinOp):
                return BinOp(op=expr.op, left=fold(expr.left),
                             right=fold(expr.right))
            if isinstance(expr, Compare):
                return Compare(op=expr.op, left=fold(expr.left),
                               right=fold(expr.right))
            if isinstance(expr, And):
                return And(terms=tuple(fold(t) for t in expr.terms))
            if isinstance(expr, Or):
                return Or(terms=tuple(fold(t) for t in expr.terms))
            if isinstance(expr, Not):
                return Not(term=fold(expr.term))
            if isinstance(expr, Between):
                return Between(term=fold(expr.term), low=fold(expr.low),
                               high=fold(expr.high))
            if isinstance(expr, InList):
                return InList(term=fold(expr.term), values=expr.values)
            return expr

        items = tuple(
            SelectItem(
                expr=(
                    Aggregate(func=it.expr.func, arg=fold(it.expr.arg))
                    if it.is_aggregate else fold(it.expr)
                ),
                alias=it.alias,
            )
            for it in stmt.items
        )
        return replace(
            stmt,
            items=items,
            where=fold(stmt.where),
            having=fold(stmt.having),
        )

    def _run_subquery(self, select: SelectStmt):
        if self._sub_depth >= MAX_SUBQUERY_DEPTH:
            raise SqlError(
                f"subqueries nest deeper than {MAX_SUBQUERY_DEPTH}"
            )
        self._sub_depth += 1
        try:
            folded = self._fold_subqueries(select)
            with maybe_span(self.tracer, "sql.subquery", layer="sql") as ss:
                bound = bind(folded, self.catalog)
                execution = self.engine.execute(
                    bound, snapshot_ts=self._snapshot_for(bound.table)
                )
                ss.set_attrs(rows=execution.result.nrows)
        finally:
            self._sub_depth -= 1
        self._sub_cycles += execution.cycles
        self.stats.subqueries_folded += 1
        return execution.result

    def _scalar_subquery(self, select: SelectStmt) -> Any:
        result = self._run_subquery(select)
        if len(result.names) != 1:
            raise SqlError(
                f"scalar subquery must return one column, got "
                f"{len(result.names)}"
            )
        rows = result.rows()
        if len(rows) != 1:
            raise SqlError(
                f"scalar subquery must return exactly one row, got "
                f"{len(rows)} (this dialect has no NULL)"
            )
        return rows[0][0]

    def _in_subquery(self, select: SelectStmt) -> Tuple[Any, ...]:
        result = self._run_subquery(select)
        if len(result.names) != 1:
            raise SqlError(
                f"IN subquery must return one column, got {len(result.names)}"
            )
        # Deduplicate (IN is a set test) preserving first-seen order.
        return tuple(dict.fromkeys(row[0] for row in result.rows()))

    # ------------------------------------------------------------------
    # DML.
    # ------------------------------------------------------------------
    def _execute_dml(self, stmt, sql: str) -> StatementResult:
        with maybe_span(self.tracer, "sql.bind", layer="sql"):
            if isinstance(stmt, InsertStmt):
                bound, kind = bind_insert(stmt, self.catalog), "insert"
            elif isinstance(stmt, UpdateStmt):
                bound, kind = bind_update(stmt, self.catalog), "update"
            else:
                bound, kind = bind_delete(stmt, self.catalog), "delete"
        table = bound.table
        if not table.schema.mvcc:
            raise SqlError(
                f"table {table.schema.name!r} is not MVCC-enabled; DML "
                "needs version stamps (CREATE TABLE via SQL makes MVCC "
                "tables)"
            )
        with maybe_span(self.tracer, "sql.plan", layer="sql") as pl:
            pl.set_attrs(kind=kind, table=table.schema.name)
        with maybe_span(self.tracer, "sql.exec", layer="sql", kind=kind) as ex:
            if self._txn is not None:
                count = self._apply_dml(self._txn, bound)
            else:
                count = run_transaction(
                    self.manager,
                    lambda txn: self._apply_dml(txn, bound),
                    policy=self.retry_policy,
                )
            ex.set_attrs(rows=count)
        self.stats.rows_written += count
        setattr(self.stats, kind + "s", getattr(self.stats, kind + "s") + 1)
        # WAL/backoff cycles accrue on the manager's and WAL's own
        # ledgers; the statement itself reports only rows touched.
        return StatementResult(kind=kind, sql=sql, rows_affected=count)

    def _apply_dml(self, txn: Transaction, bound) -> int:
        table = bound.table
        if isinstance(bound, BoundInsert):
            for values in bound.rows:
                txn.insert(table, dict(values))
            return len(bound.rows)
        slots = self._matching_slots(txn, table, bound.where)
        if isinstance(bound, BoundUpdate):
            for slot in slots:
                row = table.row(int(slot))
                changes = {
                    name: expr.eval_row(row)
                    for name, expr in bound.assignments
                }
                txn.update(table, int(slot), changes)
            return len(slots)
        if isinstance(bound, BoundDelete):
            for slot in slots:
                txn.delete(table, int(slot))
            return len(slots)
        raise SqlError(f"unknown DML plan {type(bound).__name__}")

    @staticmethod
    def _matching_slots(txn: Transaction, table, where: Optional[Expr]):
        mask = txn.visibility(table)
        if where is not None:
            cols = {
                name: table.column_values(name)
                for name in sorted(where.columns())
            }
            wmask = np.asarray(where.eval_vector(cols))
            if wmask.shape == ():  # constant predicate (WHERE 1 = 1)
                wmask = np.broadcast_to(wmask, mask.shape)
            mask = mask & wmask
        return np.flatnonzero(mask)

    # ------------------------------------------------------------------
    # DDL.
    # ------------------------------------------------------------------
    def _execute_create(self, stmt: CreateTableStmt, sql: str) -> StatementResult:
        columns = []
        for name, type_text in stmt.columns:
            try:
                columns.append(Column(name, parse_type(type_text)))
            except SchemaError as exc:
                raise SqlError(f"bad column {name!r}: {exc}")
        try:
            # SQL-created tables are MVCC so DML statements can hit them.
            self.catalog.create_table(
                TableSchema(stmt.name, tuple(columns), mvcc=True)
            )
        except SchemaError as exc:
            raise SqlError(str(exc))
        self.stats.ddl += 1
        return StatementResult(kind="create", sql=sql)

    # ------------------------------------------------------------------
    # EXPLAIN.
    # ------------------------------------------------------------------
    def _execute_explain(self, stmt: ExplainStmt, sql: str) -> StatementResult:
        target = stmt.target
        if stmt.analyze:
            if self.tracer is None or not getattr(self.tracer, "enabled", True):
                raise SqlError(
                    "EXPLAIN ANALYZE needs a tracer-enabled Session "
                    "(Session(tracer=Tracer()))"
                )
            with maybe_span(
                self.tracer, "sql.analyze", layer="sql"
            ) as span:
                inner = self._dispatch(target, sql)
            text = Trace(span).render() if isinstance(span, Span) else None
            self.stats.explains += 1
            return StatementResult(
                kind="explain",
                sql=sql,
                plan=text,
                rows_affected=inner.rows_affected,
                cycles=inner.cycles,
            )
        if isinstance(target, SelectStmt):
            folded = self._fold_subqueries(target)
            with maybe_span(self.tracer, "sql.bind", layer="sql"):
                bound = bind(folded, self.catalog)
            with maybe_span(self.tracer, "sql.plan", layer="sql"):
                decision = self.optimizer.choose(bound)
            text = decision.plan
        elif isinstance(target, InsertStmt):
            bound_i = bind_insert(target, self.catalog)
            text = (
                f"Insert: {bound_i.table.schema.name} "
                f"rows={len(bound_i.rows)}"
            )
        elif isinstance(target, (UpdateStmt, DeleteStmt)):
            if isinstance(target, UpdateStmt):
                bound_u = bind_update(target, self.catalog)
                head = (
                    f"Update: {bound_u.table.schema.name} "
                    f"set=[{', '.join(n for n, _ in bound_u.assignments)}]"
                )
                where = bound_u.where
                name = bound_u.table.schema.name
            else:
                bound_d = bind_delete(target, self.catalog)
                head = f"Delete: {bound_d.table.schema.name}"
                where = bound_d.where
                name = bound_d.table.schema.name
            lines = [head]
            if where is not None:
                lines.append(f"  Filter: {where}")
            lines.append(f"  Scan: {name}(visible)")
            text = "\n".join(lines)
        else:
            raise SqlError(
                f"EXPLAIN does not support {type(target).__name__}"
            )
        self.stats.explains += 1
        return StatementResult(kind="explain", sql=sql, plan=text)


def split_statements(script: str) -> List[str]:
    """Split a script on ``;`` boundaries, respecting string literals
    and ``--`` comments. Empty statements are dropped."""
    out: List[str] = []
    buf: List[str] = []
    i, n = 0, len(script)
    while i < n:
        ch = script[i]
        if ch == "'":
            j = i + 1
            while j < n:
                if script[j] == "'":
                    if script[j + 1 : j + 2] == "'":
                        j += 2
                        continue
                    break
                j += 1
            buf.append(script[i : j + 1])
            i = j + 1
            continue
        if ch == "-" and script[i : i + 2] == "--":
            j = script.find("\n", i)
            j = n if j < 0 else j
            buf.append(script[i:j])
            i = j
            continue
        if ch == ";":
            text = "".join(buf).strip()
            if text:
                out.append(text)
            buf = []
            i += 1
            continue
        buf.append(ch)
        i += 1
    tail = "".join(buf).strip()
    if tail:
        out.append(tail)
    return out
