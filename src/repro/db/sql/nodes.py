"""SQL AST nodes produced by the parser and consumed by the binder.

Beyond the original ``SELECT`` shape this module now carries the full
statement surface of the front door: DML (``INSERT``/``UPDATE``/
``DELETE``), DDL (``CREATE TABLE``/``DROP TABLE``), transaction control
(``BEGIN``/``COMMIT``/``ROLLBACK``), ``EXPLAIN [ANALYZE]``, and the
subquery expression nodes the statement pipeline folds before binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Tuple

from repro.db.expr import Expr
from repro.errors import SqlError


@dataclass(frozen=True)
class Aggregate:
    """``func(arg)`` in a select list; ``arg is None`` means ``COUNT(*)``."""

    func: str  # "sum" | "avg" | "count" | "min" | "max"
    arg: Optional[Expr]

    FUNCS = ("sum", "avg", "count", "min", "max")

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One output of the select list: a plain expression or an aggregate."""

    expr: object  # Expr | Aggregate
    alias: Optional[str] = None

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expr, Aggregate)

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        return f"col{position}" if not hasattr(self.expr, "name") else self.expr.name


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <table> [alias] ON <left> = <right>`` (equi-join only).

    ``left_qual``/``right_qual`` carry the table qualifiers when the join
    keys were written qualified (``ON o.key = l.key``); ``None`` means the
    key was unqualified and the binder resolves it by schema membership.
    """

    table: str
    left_col: str
    right_col: str
    alias: Optional[str] = None
    left_qual: Optional[str] = None
    right_qual: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Star:
    """``SELECT *``: expanded to every user column by the binder."""


@dataclass(frozen=True)
class SelectStmt:
    """A parsed ``SELECT`` over one table, optionally equi-joined.

    ``joins`` chains left-deep: each clause joins the running result to
    one more table (``FROM a JOIN b ON .. JOIN c ON ..``).
    """

    items: Tuple[SelectItem, ...]
    table: str
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[str, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    offset: Optional[int] = None
    alias: Optional[str] = None

    @property
    def join(self) -> Optional[JoinClause]:
        """The first join clause (legacy single-join accessor)."""
        return self.joins[0] if self.joins else None

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)


# ----------------------------------------------------------------------
# Subquery expression nodes.
#
# These are *placeholders*: the statement pipeline executes the inner
# SELECT and substitutes a constant before the binder ever sees the
# statement. Reaching an evaluator means a caller bypassed the pipeline.
# ----------------------------------------------------------------------
class _SubqueryExpr(Expr):
    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def eval_row(self, row: Mapping[str, Any]) -> Any:
        raise SqlError(
            "subqueries must be folded by the statement pipeline "
            "(repro.db.sql.pipeline.Session) before execution"
        )

    def eval_vector(self, cols: Mapping[str, Any]) -> Any:
        self.eval_row({})


@dataclass(frozen=True)
class ScalarSubquery(_SubqueryExpr):
    """``(SELECT ...)`` used as a scalar value (one row, one column)."""

    select: SelectStmt

    def __str__(self) -> str:
        return f"(SELECT ... FROM {self.select.table})"


@dataclass(frozen=True)
class InSubquery(_SubqueryExpr):
    """``term IN (SELECT ...)`` (uncorrelated; folded to an IN list)."""

    term: Expr
    select: SelectStmt

    def columns(self) -> FrozenSet[str]:
        return self.term.columns()

    def __str__(self) -> str:
        return f"({self.term} IN (SELECT ... FROM {self.select.table}))"


# ----------------------------------------------------------------------
# DML / DDL / transaction-control / EXPLAIN statements.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InsertStmt:
    """``INSERT INTO t [(cols)] VALUES (...), (...)`` — constant rows."""

    table: str
    columns: Optional[Tuple[str, ...]]
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class UpdateStmt:
    """``UPDATE t [alias] SET col = expr, ... [WHERE pred]``."""

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None
    alias: Optional[str] = None


@dataclass(frozen=True)
class DeleteStmt:
    """``DELETE FROM t [alias] [WHERE pred]``."""

    table: str
    where: Optional[Expr] = None
    alias: Optional[str] = None


@dataclass(frozen=True)
class CreateTableStmt:
    """``CREATE TABLE t (col TYPE, ...)`` — types per ``repro.db.types``."""

    name: str
    columns: Tuple[Tuple[str, str], ...]  # (column name, type text)


@dataclass(frozen=True)
class DropTableStmt:
    name: str


@dataclass(frozen=True)
class BeginStmt:
    pass


@dataclass(frozen=True)
class CommitStmt:
    pass


@dataclass(frozen=True)
class RollbackStmt:
    pass


@dataclass(frozen=True)
class ExplainStmt:
    """``EXPLAIN [ANALYZE] <statement>``."""

    target: object  # SelectStmt | InsertStmt | UpdateStmt | DeleteStmt
    analyze: bool = False


#: Everything ``parse_statement`` can produce.
Statement = object
