"""SQL AST nodes produced by the parser and consumed by the binder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.db.expr import Expr


@dataclass(frozen=True)
class Aggregate:
    """``func(arg)`` in a select list; ``arg is None`` means ``COUNT(*)``."""

    func: str  # "sum" | "avg" | "count" | "min" | "max"
    arg: Optional[Expr]

    FUNCS = ("sum", "avg", "count", "min", "max")

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One output of the select list: a plain expression or an aggregate."""

    expr: object  # Expr | Aggregate
    alias: Optional[str] = None

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expr, Aggregate)

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        return f"col{position}" if not hasattr(self.expr, "name") else self.expr.name


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <table> ON <left col> = <right col>`` (equi-join only)."""

    table: str
    left_col: str
    right_col: str


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Star:
    """``SELECT *``: expanded to every user column by the binder."""


@dataclass(frozen=True)
class SelectStmt:
    """A parsed ``SELECT`` over one table, optionally equi-joined.

    ``joins`` chains left-deep: each clause joins the running result to
    one more table (``FROM a JOIN b ON .. JOIN c ON ..``).
    """

    items: Tuple[SelectItem, ...]
    table: str
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[str, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    @property
    def join(self) -> Optional[JoinClause]:
        """The first join clause (legacy single-join accessor)."""
        return self.joins[0] if self.joins else None

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)
