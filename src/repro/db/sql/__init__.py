"""SQL front end: lexer, parser, and AST nodes for the supported subset."""

from repro.db.sql.lexer import Token, TokenKind, tokenize
from repro.db.sql.nodes import (
    Aggregate,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
)
from repro.db.sql.parser import Parser, parse

__all__ = [
    "Aggregate",
    "JoinClause",
    "OrderItem",
    "Parser",
    "SelectItem",
    "SelectStmt",
    "Token",
    "TokenKind",
    "parse",
    "tokenize",
]
