"""SQL front end: lexer, parser, AST nodes, and the statement pipeline.

The one-door entry point is :class:`~repro.db.sql.pipeline.Session` —
``Session().execute("SELECT ...")`` runs parse → bind → plan → exec with
spans and metrics; DML statements run as MVCC transactions against the
session's WAL. :func:`parse`/:func:`parse_statement` stay available for
callers that only need the AST.
"""

from repro.db.sql.lexer import (
    Token,
    TokenKind,
    normalize_sql,
    statement_shape,
    tokenize,
)
from repro.db.sql.nodes import (
    Aggregate,
    BeginStmt,
    CommitStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    ExplainStmt,
    InsertStmt,
    InSubquery,
    JoinClause,
    OrderItem,
    RollbackStmt,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    UpdateStmt,
)
from repro.db.sql.parser import Parser, parse, parse_statement

# The pipeline pulls in the binder/optimizer/engine stack, which itself
# imports repro.db.sql.nodes — resolve Session & friends lazily (PEP 562)
# to keep `import repro.db.sql` cycle-free.
_PIPELINE_EXPORTS = (
    "Session",
    "SqlStats",
    "StatementResult",
    "split_statements",
)


def __getattr__(name):
    if name in _PIPELINE_EXPORTS:
        from repro.db.sql import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Aggregate",
    "BeginStmt",
    "CommitStmt",
    "CreateTableStmt",
    "DeleteStmt",
    "DropTableStmt",
    "ExplainStmt",
    "InSubquery",
    "InsertStmt",
    "JoinClause",
    "OrderItem",
    "Parser",
    "RollbackStmt",
    "ScalarSubquery",
    "SelectItem",
    "SelectStmt",
    "Session",
    "SqlStats",
    "StatementResult",
    "Token",
    "TokenKind",
    "UpdateStmt",
    "normalize_sql",
    "parse",
    "parse_statement",
    "split_statements",
    "statement_shape",
    "tokenize",
]
