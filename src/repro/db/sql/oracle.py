"""Brute-force SQL oracle: the differential fuzzer's independent referee.

Evaluates parsed statements over plain Python dict rows — no numpy, no
binder, no executors, no code shared with the engines beyond the parser
and the frozen AST dataclasses. Where the engines pad CHAR values to
fixed-width byte strings, the oracle keeps bare ``str``; where the
engines carry ``int32`` columns, the oracle keeps ``int``. The value
contract is exactly :meth:`repro.db.exec.result.QueryResult.rows`:
decoded strings, Python ints, Python floats.

Semantics deliberately mirror the Volcano reference executor (the
dialect's definition of truth):

- ``SUM``/``MIN``/``MAX``/``AVG`` accumulate as floats; ``COUNT`` is an
  int. A global aggregate over zero rows yields one row with ``count=0``,
  ``sum=0.0``, ``avg=NaN``, ``min=inf``, ``max=-inf``.
- Groups emit sorted by group-key tuple; ``DISTINCT`` emits sorted by
  output tuple.
- ``ORDER BY`` is a stable multi-key sort (last key first, one stable
  pass per key); ``OFFSET`` skips before ``LIMIT`` counts.
- Joins are left-deep nested loops; merged rows let the right side win
  on column-name collisions (the fuzzer keeps names disjoint anyway).
- MVCC slot discipline: ``UPDATE`` retires the old version and appends
  the new one at the end of the scan order, in ascending matched order.

The oracle also evaluates the subquery forms the statement pipeline
folds (scalar subqueries and ``IN (SELECT ...)``), recursively, against
its own current state — matching the pipeline's fold-then-bind timing
because both see the same committed snapshot between statements.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.db.sql.nodes import (
    Aggregate,
    BeginStmt,
    CommitStmt,
    CreateTableStmt,
    DeleteStmt,
    DropTableStmt,
    InsertStmt,
    InSubquery,
    RollbackStmt,
    ScalarSubquery,
    SelectItem,
    SelectStmt,
    Star,
    UpdateStmt,
)
from repro.db.sql.parser import parse_statement
from repro.errors import SqlError

Row = Dict[str, Any]

_ARITH: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}
_COMPARE: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class OracleTable:
    """One relation: ordered column names plus a list of dict rows."""

    def __init__(self, name: str, columns: Tuple[str, ...]):
        self.name = name
        self.columns = tuple(columns)
        self.rows: List[Row] = []


class SqlOracle:
    """Executes the fuzzer's SQL dialect over dict rows."""

    def __init__(self):
        self.tables: Dict[str, OracleTable] = {}
        #: Statements staged by an explicit BEGIN, applied on COMMIT.
        self._txn: Optional[List[object]] = None

    # ------------------------------------------------------------------
    # Statement entry points.
    # ------------------------------------------------------------------
    def execute(self, sql: str):
        """Run one statement; SELECT returns ``(names, rows)``, DML the
        affected row count, everything else ``None``."""
        return self.apply(parse_statement(sql))

    def apply(self, stmt: object):
        if isinstance(stmt, BeginStmt):
            if self._txn is not None:
                raise SqlError("oracle: transaction already open")
            self._txn = []
            return None
        if isinstance(stmt, CommitStmt):
            staged, self._txn = self._txn, None
            if staged is None:
                raise SqlError("oracle: no transaction open")
            for s in staged:
                self._apply_now(s)
            return None
        if isinstance(stmt, RollbackStmt):
            if self._txn is None:
                raise SqlError("oracle: no transaction open")
            self._txn = None
            return None
        if self._txn is not None and isinstance(
            stmt, (InsertStmt, UpdateStmt, DeleteStmt)
        ):
            self._txn.append(stmt)
            return None
        return self._apply_now(stmt)

    def _apply_now(self, stmt: object):
        if isinstance(stmt, SelectStmt):
            return self.select(stmt)
        if isinstance(stmt, InsertStmt):
            return self._insert(stmt)
        if isinstance(stmt, UpdateStmt):
            return self._update(stmt)
        if isinstance(stmt, DeleteStmt):
            return self._delete(stmt)
        if isinstance(stmt, CreateTableStmt):
            if stmt.name in self.tables:
                raise SqlError(f"oracle: table {stmt.name!r} exists")
            self.tables[stmt.name] = OracleTable(
                stmt.name, tuple(name for name, _ in stmt.columns)
            )
            return None
        if isinstance(stmt, DropTableStmt):
            self.tables.pop(stmt.name, None)
            return None
        raise SqlError(f"oracle: unsupported statement {type(stmt).__name__}")

    def load(self, name: str, columns: Tuple[str, ...], rows) -> None:
        """Register a side table with pre-built rows (non-SQL setup)."""
        table = OracleTable(name, columns)
        table.rows = [dict(r) for r in rows]
        self.tables[name] = table

    # ------------------------------------------------------------------
    # DML.
    # ------------------------------------------------------------------
    def _table(self, name: str) -> OracleTable:
        try:
            return self.tables[name]
        except KeyError:
            raise SqlError(f"oracle: unknown table {name!r}")

    def _insert(self, stmt: InsertStmt) -> int:
        table = self._table(stmt.table)
        names = stmt.columns if stmt.columns is not None else table.columns
        for values in stmt.rows:
            if len(values) != len(names):
                raise SqlError("oracle: INSERT arity mismatch")
            table.rows.append(
                {n: self._eval(e, {}) for n, e in zip(names, values)}
            )
        return len(stmt.rows)

    def _update(self, stmt: UpdateStmt) -> int:
        table = self._table(stmt.table)
        matched = [
            r
            for r in table.rows
            if stmt.where is None or self._eval(stmt.where, r)
        ]
        if not matched:
            return 0
        hit = set(map(id, matched))
        table.rows = [r for r in table.rows if id(r) not in hit]
        for old in matched:
            # All assignments see the pre-update row, then the new version
            # lands at the end of scan order (the MVCC slot discipline).
            new = dict(old)
            new.update(
                {name: self._eval(expr, old) for name, expr in stmt.assignments}
            )
            table.rows.append(new)
        return len(matched)

    def _delete(self, stmt: DeleteStmt) -> int:
        table = self._table(stmt.table)
        keep = [
            r
            for r in table.rows
            if not (stmt.where is None or self._eval(stmt.where, r))
        ]
        removed = len(table.rows) - len(keep)
        table.rows = keep
        return removed

    # ------------------------------------------------------------------
    # SELECT.
    # ------------------------------------------------------------------
    def select(self, stmt: SelectStmt) -> Tuple[Tuple[str, ...], List[Tuple]]:
        table = self._table(stmt.table)
        rows: List[Row] = [dict(r) for r in table.rows]
        for clause in stmt.joins:
            right = self._table(clause.table)
            joined: List[Row] = []
            for lrow in rows:
                for rrow in right.rows:
                    if lrow[clause.left_col] == rrow[clause.right_col]:
                        merged = dict(lrow)
                        merged.update(rrow)
                        joined.append(merged)
            rows = joined
        if stmt.where is not None:
            rows = [r for r in rows if self._eval(stmt.where, r)]

        items = stmt.items
        if len(items) == 1 and isinstance(items[0].expr, Star):
            items = tuple(
                SelectItem(expr=ColumnRef(name)) for name in table.columns
            )
        names = tuple(self._output_name(item, pos) for pos, item in enumerate(items))

        if stmt.group_by or any(isinstance(i.expr, Aggregate) for i in items):
            out_rows = self._aggregate(items, names, stmt.group_by, rows)
        else:
            out_rows = [
                {n: self._eval(item.expr, r) for n, item in zip(names, items)}
                for r in rows
            ]

        if stmt.having is not None:
            out_rows = [r for r in out_rows if self._eval(stmt.having, r)]
        if stmt.distinct:
            seen: Dict[Tuple, Row] = {}
            for r in out_rows:
                seen.setdefault(tuple(r[n] for n in names), r)
            out_rows = [seen[k] for k in sorted(seen)]
        for item in reversed(stmt.order_by):
            out_rows.sort(
                key=lambda r: self._eval(item.expr, r),
                reverse=item.descending,
            )
        offset = stmt.offset or 0
        if stmt.limit is not None or offset:
            stop = None if stmt.limit is None else offset + stmt.limit
            out_rows = out_rows[offset:stop]
        return names, [tuple(r[n] for n in names) for r in out_rows]

    @staticmethod
    def _output_name(item: SelectItem, pos: int) -> str:
        if item.alias:
            return item.alias
        expr = item.expr
        if isinstance(expr, Aggregate):
            return f"{expr.func}_{pos}"
        if isinstance(expr, ColumnRef):
            return expr.name
        return f"col{pos}"

    def _aggregate(
        self,
        items: Tuple[SelectItem, ...],
        names: Tuple[str, ...],
        group_by: Tuple[str, ...],
        rows: List[Row],
    ) -> List[Row]:
        groups: Dict[Tuple, List[Row]] = {}
        for r in rows:
            groups.setdefault(tuple(r[g] for g in group_by), []).append(r)
        if not groups and not group_by:
            groups[()] = []
        out: List[Row] = []
        for key in sorted(groups):
            grp = groups[key]
            row: Row = {}
            for name, item in zip(names, items):
                expr = item.expr
                if isinstance(expr, Aggregate):
                    row[name] = self._agg_value(expr, grp)
                else:
                    if not isinstance(expr, ColumnRef) or expr.name not in group_by:
                        raise SqlError(
                            f"oracle: output {name!r} is neither aggregated "
                            f"nor a group key"
                        )
                    row[name] = key[group_by.index(expr.name)]
            out.append(row)
        return out

    def _agg_value(self, agg: Aggregate, grp: List[Row]):
        if agg.func == "count":
            return len(grp)
        vals = [float(self._eval(agg.arg, r)) for r in grp]
        acc = 0.0
        for v in vals:
            acc += v
        if agg.func == "sum":
            return acc
        if agg.func == "avg":
            return acc / len(vals) if vals else float("nan")
        if agg.func == "min":
            return min(vals) if vals else float("inf")
        if agg.func == "max":
            return max(vals) if vals else float("-inf")
        raise SqlError(f"oracle: unknown aggregate {agg.func!r}")

    # ------------------------------------------------------------------
    # Expression evaluation (with recursive subqueries).
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, row: Row):
        if isinstance(expr, ColumnRef):
            try:
                return row[expr.name]
            except KeyError:
                raise SqlError(f"oracle: row has no column {expr.name!r}")
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ScalarSubquery):
            return self._scalar_subquery(expr.select)
        if isinstance(expr, InSubquery):
            v = self._eval(expr.term, row)
            _, rows = self.select(expr.select)
            return any(v == r[0] for r in rows)
        if isinstance(expr, BinOp):
            return _ARITH[expr.op](
                self._eval(expr.left, row), self._eval(expr.right, row)
            )
        if isinstance(expr, Compare):
            return _COMPARE[expr.op](
                self._eval(expr.left, row), self._eval(expr.right, row)
            )
        if isinstance(expr, And):
            return all(self._eval(t, row) for t in expr.terms)
        if isinstance(expr, Or):
            return any(self._eval(t, row) for t in expr.terms)
        if isinstance(expr, Not):
            return not self._eval(expr.term, row)
        if isinstance(expr, Between):
            v = self._eval(expr.term, row)
            return (
                self._eval(expr.low, row) <= v <= self._eval(expr.high, row)
            )
        if isinstance(expr, InList):
            v = self._eval(expr.term, row)
            return any(v == x for x in expr.values)
        raise SqlError(f"oracle: unknown expression {type(expr).__name__}")

    def _scalar_subquery(self, select: SelectStmt):
        names, rows = self.select(select)
        if len(names) != 1 or len(rows) != 1:
            raise SqlError(
                f"oracle: scalar subquery returned {len(rows)} rows x "
                f"{len(names)} columns"
            )
        return rows[0][0]
