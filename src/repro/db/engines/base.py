"""Engine framework: shared execution flow + per-engine cost recipes.

Every engine answers queries through the same vectorized evaluator (so
results are identical by construction) but *accounts cycles* according to
its execution model:

* :class:`~repro.db.engines.rowstore.RowStoreEngine` — Volcano
  tuple-at-a-time over the row image (full rows stream through caches);
* :class:`~repro.db.engines.colstore.ColumnStoreEngine` —
  column-at-a-time over a materialized columnar replica (one stream per
  column, intermediates, tuple reconstruction);
* :class:`~repro.db.engines.rmstore.RelationalMemoryEngine` — a scalar
  kernel over an ephemeral column group packed by the fabric.

The per-operator recipes live in subclasses' ``_charge_access``; common
post-scan work (joins, grouping, sorting) is charged identically here,
because those costs do not depend on the access path.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.ledger import CostLedger
from repro.core.mvcc_filter import visible_mask_batched
from repro.db.catalog import Catalog
from repro.db.plan.binder import BoundQuery, bind
from repro.db.plan.codecache import CodeFragmentCache, Fragment
from repro.db.plan.logical import explain
from repro.db.exec.result import QueryResult
from repro.db.exec.vector import FusedKernel, apply_where, run_vector
from repro.db.exec.volcano import run_volcano
from repro.db.sql.lexer import normalize_sql
from repro.db.sql.parser import parse
from repro.errors import ExecutionError
from repro.hw.analytic import AnalyticMemoryModel, MemoryModel, TraceMemoryModel
from repro.hw.config import PlatformConfig, default_platform
from repro.hw.cpu import CpuCostModel
from repro.obs import (
    MetricsRegistry,
    Span,
    Trace,
    Tracer,
    active,
    active_metrics,
    maybe_span,
)


@dataclass
class ExecutionResult:
    """A query answer plus the full simulated cost picture."""

    engine: str
    result: QueryResult
    ledger: CostLedger
    plan: str
    #: Rows visible to the query (post-MVCC), rows qualifying the WHERE.
    visible_rows: int = 0
    qualifying_rows: int = 0
    #: True when the engine's native access path faulted and the answer
    #: was produced by the software fallback (rowstore scan) instead.
    degraded: bool = False
    #: Hierarchical cost attribution (present when the engine carries an
    #: enabled :class:`repro.obs.Tracer`). ``trace.to_ledger()`` folds
    #: back to ``ledger`` bit-identically.
    trace: Optional[Trace] = None
    #: The engine's :class:`repro.obs.MetricsRegistry` (None when metrics
    #: are off): export ``metrics.to_prometheus()`` after the run, or
    #: read the sampled time series from ``metrics.sampler.series``.
    metrics: Optional[MetricsRegistry] = None

    @property
    def cycles(self) -> float:
        return self.ledger.total_cycles

    def seconds(self, cpu: CpuCostModel) -> float:
        return cpu.seconds(self.cycles)


class Engine(ABC):
    """Base engine: parse/bind, fetch columns, charge costs, evaluate."""

    name: str = "abstract"
    #: Physical layout the code cache keys fragments by; engines with a
    #: different delivery path (column streams, fabric lines) override.
    fragment_layout: str = "row"

    def __init__(
        self,
        catalog: Catalog,
        platform: Optional[PlatformConfig] = None,
        memory_model: str = "analytic",
        threads: int = 1,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        exec_mode: str = "vector",
        codecache: Optional["CodeFragmentCache"] = None,
    ):
        self.catalog = catalog
        self.platform = platform or default_platform()
        self.cpu = CpuCostModel(self.platform.cpu)
        if threads < 1:
            raise ExecutionError(f"threads must be >= 1, got {threads}")
        #: Intra-query parallelism (the testbed has four cores). Compute
        #: and exposed-latency work scale with threads; prefetch-covered
        #: streaming saturates the DDR channel at
        #: ``dram.bandwidth_saturation_cores``.
        self.threads = threads
        if memory_model == "analytic":
            self.memory: MemoryModel = AnalyticMemoryModel(self.platform)
        elif memory_model == "trace":
            self.memory = TraceMemoryModel(self.platform)
        else:
            raise ExecutionError(f"unknown memory model {memory_model!r}")
        if exec_mode not in ("vector", "volcano"):
            raise ExecutionError(f"unknown exec mode {exec_mode!r}")
        #: Answer-path executor: the fused vectorized kernels (default)
        #: or the scalar Volcano reference. Cost charging is identical —
        #: only how the answer is computed differs, so the two modes are
        #: bit-identical in rows, cycles, and cache counters.
        self.exec_mode = exec_mode
        #: Optional :class:`repro.db.plan.codecache.CodeFragmentCache`.
        #: When attached, repeated query shapes skip SQL parse/bind (by
        #: query text) and kernel compilation (by fragment signature),
        #: and misses charge ``PLAN_COMPILE`` cycles.
        self.codecache = codecache
        self._bound_cache: Dict[str, BoundQuery] = {}
        #: Observability hook: when set (and enabled), every execute()
        #: builds a span tree and returns it as ``ExecutionResult.trace``.
        self.tracer = tracer
        #: Metrics hook: query ledgers drive this registry's simulated
        #: clock, and the engine registers its PMU-style collectors on
        #: it (the shared None fast path when metrics are off).
        self.metrics = active_metrics(metrics)
        if self.metrics is not None:
            self._register_metrics()

    def _register_metrics(self) -> None:
        """Create this engine's instruments and collectors (metrics on)."""
        from repro.obs.collectors import register_hierarchy
        from repro.obs.metrics import fmt_name

        reg = self.metrics
        self._m_queries = reg.counter(
            fmt_name("engine_queries", engine=self.name),
            help="Queries executed by this engine",
        )
        self._m_rows_scanned = reg.counter(
            fmt_name("engine_rows_scanned", engine=self.name),
            help="Rows visible to (and scanned by) the access path",
        )
        self._m_rows_filtered = reg.counter(
            fmt_name("engine_rows_filtered", engine=self.name),
            help="Scanned rows eliminated by the WHERE clause",
        )
        if isinstance(self.memory, TraceMemoryModel):
            register_hierarchy(reg, self.memory.hierarchy, engine=self.name)
        if self.codecache is not None:
            from repro.obs.collectors import register_codecache

            register_codecache(reg, self.codecache, engine=self.name)

    # ------------------------------------------------------------------
    # Observability plumbing.
    # ------------------------------------------------------------------
    def _span(self, name: str, probe=None, **attrs):
        """A span under this engine's tracer (the shared no-op when
        tracing is off — the only cost then is this predicate)."""
        return maybe_span(self.tracer, name, probe=probe, **attrs)

    def _hw_probe(self):
        """Hardware-counter probe for spans: cache/DRAM deltas in trace
        mode, nothing in analytic mode (it has no event counters)."""
        if isinstance(self.memory, TraceMemoryModel):
            return self.memory.hierarchy.counters
        return None

    # ------------------------------------------------------------------
    # Parallel scan charging, shared by every engine's access path.
    # ------------------------------------------------------------------
    def _charge_scan(self, ledger: CostLedger, mem, **cpu_buckets: float) -> float:
        """Charge one scan stage: named CPU components plus a MemCost.

        Per-thread: CPU work and exposed misses divide by ``threads``
        (independent across cores); covered streaming divides only until
        the channel saturates. The covered stream overlaps with compute:
        the stage costs ``max(covered, cpu) + exposed``. Returns the
        stage's total cycles.
        """
        n = self.threads
        sat = min(n, self.platform.dram.bandwidth_saturation_cores)
        cpu_total = 0.0
        for bucket, cycles in cpu_buckets.items():
            scaled = cycles / n
            ledger.charge(bucket, scaled)
            cpu_total += scaled
        covered = mem.covered / sat
        exposed = mem.exposed / n
        mem_charge = exposed + max(0.0, covered - cpu_total)
        ledger.charge(CostLedger.MEMORY, mem_charge)
        return cpu_total + mem_charge

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def execute(
        self,
        query: Union[str, BoundQuery],
        snapshot_ts: Optional[int] = None,
    ) -> ExecutionResult:
        """Run one query and return its answer and cost ledger.

        ``snapshot_ts`` enables MVCC visibility on tables that carry
        timestamp columns; it is ignored (with all rows visible) on
        plain tables.
        """
        bound = self.bind(query) if isinstance(query, str) else query
        ledger = CostLedger(tracer=active(self.tracer), metrics=self.metrics)
        with self._span(
            "query",
            engine=self.name,
            table=bound.table.schema.name,
            layer="engine",
        ) as root:
            fragment = self._plan_fragment(bound, ledger)
            with self._span(
                "scan",
                probe=self._hw_probe(),
                table=bound.table.schema.name,
                mode=self.access_path,
            ) as scan:
                columns, visible, mask = self._fetch(bound, snapshot_ts, ledger)
                qualifying = (
                    visible if mask is None else int(np.count_nonzero(mask))
                )
                scan.set_attrs(
                    rows_in=bound.table.nrows,
                    rows_out=qualifying,
                    mode=self.access_path,
                )
            if self.metrics is not None:
                self._m_queries.inc()
                self._m_rows_scanned.inc(visible)
                self._m_rows_filtered.inc(visible - qualifying)
            self._charge_post_scan(bound, visible, qualifying, ledger)
            # The answer path (repro.db.exec) is shared and uncosted —
            # its cycles were charged per-operator above — but it still
            # appears in the trace so the tree shows where answers form.
            with self._span("answer", layer="exec", mode=self.exec_mode) as ans:
                if self.exec_mode == "volcano":
                    result = run_volcano(bound, columns)
                elif fragment is not None:
                    result = fragment.payload(columns, mask=mask)
                else:
                    result = run_vector(bound, columns, mask=mask)
                ans.set_attrs(rows_out=result.nrows)
            root.set_attrs(
                rows_out=result.nrows,
                visible_rows=visible,
                qualifying_rows=qualifying,
            )
        return ExecutionResult(
            engine=self.name,
            result=result,
            ledger=ledger,
            plan=self._plan_text(bound, fragment),
            visible_rows=visible,
            qualifying_rows=qualifying,
            trace=Trace(root) if isinstance(root, Span) else None,
            metrics=self.metrics,
        )

    def bind(self, sql: str) -> BoundQuery:
        """Parse + bind, memoized by *normalized* statement text when a
        code cache is attached: statements differing only in case,
        whitespace, or comments share one bound form, so the warm path
        skips the whole frontend. (Fragments themselves are keyed by the
        binding signature — structure + layout, literals blanked — which
        is what lets the fabric share compiled code across literal values
        and, under the ephemeral layout, across column subsets.)"""
        if self.codecache is not None:
            key = normalize_sql(sql)
            bound = self._bound_cache.get(key)
            if bound is None:
                bound = bind(parse(sql), self.catalog)
                self._bound_cache[key] = bound
            return bound
        return bind(parse(sql), self.catalog)

    def _plan_fragment(
        self, bound: BoundQuery, ledger: CostLedger
    ) -> Optional[Fragment]:
        """Code-cache lookup: fetch or compile this shape's fused kernel.

        Misses compile a :class:`FusedKernel` and charge ``PLAN_COMPILE``
        cycles; hits dispatch straight to the resident kernel. Without a
        cache (the default) there is no charge and no fragment — default
        cycle totals are untouched.
        """
        if self.codecache is None or self.exec_mode != "vector":
            return None
        with self._span("plan", layer="plan", layout=self.fragment_layout) as span:
            hit, cycles, fragment = self.codecache.fetch(
                bound, self.fragment_layout, compiler=lambda: FusedKernel(bound)
            )
            if cycles:
                ledger.charge(CostLedger.PLAN_COMPILE, cycles)
            if fragment.payload is None or fragment.payload.query is not bound:
                # Same code shape, different parameters (literals or, on
                # the packed layout, a different same-typed column set):
                # the generated code is reused — only this cheap Python
                # re-bind happens, with no compile charge.
                fragment.payload = FusedKernel(bound)
            span.set_attrs(hit=hit, compile_cycles=cycles)
        return fragment

    def _plan_text(self, bound: BoundQuery, fragment: Optional[Fragment]) -> str:
        if fragment is None:
            return explain(bound, access_path=self.access_path)
        plan = fragment.plans.get(self.access_path)
        if plan is None:
            plan = explain(bound, access_path=self.access_path)
            fragment.plans[self.access_path] = plan
        return plan

    @property
    def access_path(self) -> str:
        return "scan"

    # ------------------------------------------------------------------
    # Engine-specific access path.
    # ------------------------------------------------------------------
    @abstractmethod
    def _fetch(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        ledger: CostLedger,
    ) -> Tuple[Dict[str, np.ndarray], int, Optional[np.ndarray]]:
        """Deliver the referenced base columns (restricted to visible
        rows), charging the access-path costs. Returns ``(columns,
        visible_row_count, where_mask_or_None)``."""

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------
    def _visibility(
        self, bound: BoundQuery, snapshot_ts: Optional[int]
    ) -> Optional[np.ndarray]:
        table = bound.table
        if snapshot_ts is None or not table.schema.mvcc:
            return None
        # Batched mask: bit-identical to the unbatched form, but the
        # timestamp traffic is consumed in bounded chunks like every
        # other vectorized kernel in the engines.
        return visible_mask_batched(table.begin_ts, table.end_ts, snapshot_ts)

    def _decoded_columns(
        self, bound: BoundQuery, vis: Optional[np.ndarray]
    ) -> Dict[str, np.ndarray]:
        table = bound.table
        out = {}
        for name in bound.referenced_columns:
            values = table.column_values(name)
            out[name] = values if vis is None else values[vis]
        return out

    def _apply_filter(
        self,
        bound: BoundQuery,
        columns: Dict[str, np.ndarray],
        visible: int,
    ) -> Tuple[Optional[np.ndarray], int]:
        """Evaluate the WHERE clause over decoded columns.

        Returns ``(mask_or_None, qualifying_row_count)`` and tags the
        current span with the selectivity — shared by every access path
        so the filter instrumentation lives in exactly one place.
        """
        mask = apply_where(bound, columns)
        qualifying = visible if mask is None else int(np.count_nonzero(mask))
        with self._span(
            "filter", rows_in=visible, rows_out=qualifying
        ) as span:
            if bound.where is not None:
                span.set_attrs(
                    selectivity=(qualifying / visible if visible else 0.0)
                )
        return mask, qualifying

    def _scan_preamble(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        column_source=None,
    ) -> Tuple[
        Optional[np.ndarray], int, Dict[str, np.ndarray], Optional[np.ndarray], int
    ]:
        """The shared head of every engine's scan: MVCC visibility mask,
        column decode, WHERE evaluation.

        ``column_source(name)`` overrides where a column's full array
        comes from (the column store reads its replica instead of the
        base table). Pure bookkeeping — no ledger charges and no memory
        model calls, so each engine's cost recipe stays byte-for-byte
        where it was.

        Returns ``(vis, visible, columns, mask, qualifying)``.
        """
        table = bound.table
        vis = self._visibility(bound, snapshot_ts)
        visible = table.nrows if vis is None else int(np.count_nonzero(vis))
        with self._span(
            "visibility", rows_in=table.nrows, rows_out=visible
        ):
            pass
        if column_source is None:
            columns = self._decoded_columns(bound, vis)
        else:
            columns = {
                name: (
                    column_source(name)
                    if vis is None
                    else column_source(name)[vis]
                )
                for name in bound.referenced_columns
            }
        mask, qualifying = self._apply_filter(bound, columns, visible)
        return vis, visible, columns, mask, qualifying

    def _charge_post_scan(
        self, bound: BoundQuery, visible: int, qualifying: int, ledger: CostLedger
    ) -> None:
        """Join/group/sort costs, identical across access paths.

        These parallelize across threads (partitioned hash tables, local
        accumulators merged at the end).
        """
        cpu = self.cpu
        n = self.threads
        for join in bound.joins:
            # Left-deep chain: each step builds on its right table and
            # probes with the qualifying rows (intermediate fan-out is
            # not modeled — probes per step stay the scan's output).
            build_n = join.table.nrows
            with self._span(
                "join", rows_in=qualifying, build_rows=build_n
            ):
                ledger.charge(
                    CostLedger.CPU, cpu.hash_probes(build_n + qualifying) / n
                )
                probe = self.memory.random(
                    qualifying, build_n * 16  # key + payload pointer per entry
                )
                ledger.charge(CostLedger.MEMORY, probe.total / n)
        if bound.group_by or bound.has_aggregates:
            with self._span(
                "aggregate",
                rows_in=qualifying,
                aggregates=bound.aggregate_count,
            ):
                ledger.charge(CostLedger.CPU, cpu.hash_probes(qualifying) / n)
                ledger.charge(
                    CostLedger.CPU,
                    cpu.aggregate_updates(qualifying * bound.aggregate_count) / n,
                )
        n_out = qualifying if not (bound.group_by or bound.has_aggregates) else 0
        if bound.distinct and n_out > 0:
            with self._span("distinct", rows_in=n_out):
                ledger.charge(CostLedger.CPU, cpu.hash_probes(n_out) / n)
        if bound.order_by and n_out > 1:
            with self._span(
                "sort", rows_in=n_out, keys=len(bound.order_by)
            ):
                comparisons = n_out * math.log2(n_out) * len(bound.order_by)
                ledger.charge(CostLedger.CPU, cpu.predicates(int(comparisons)) / n)
