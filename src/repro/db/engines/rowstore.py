"""The row-store baseline: Volcano-style tuple-at-a-time processing.

This is the paper's ROW comparator (Section V: "an in-memory row-store
following the volcano-style processing model (tuple-at-a-time)"). Every
row streams through the cache hierarchy in full — the legacy fetch path
of Figure 1 — and each tuple pays the interpreted ``next()`` chain.

The full-row stream is prefetch-covered, so it overlaps with the
interpretation work: the scan stage costs ``max(stream, cpu)``. For wide
rows and narrow queries the stream dominates (data movement bound); for
compute-heavy queries (TPC-H Q1) the interpreter dominates and all
engines converge — both regimes the paper discusses.

With ``use_indexes=True`` the engine also executes the index role the
paper leaves to B+-trees (§III-A: "indexes will mostly be useful for
workloads with point queries and updates"): an equality conjunct on an
indexed column probes the tree and fetches only the matching rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ledger import CostLedger
from repro.db.engines.base import Engine
from repro.db.expr import ColumnRef, Compare, Literal
from repro.db.plan.binder import BoundQuery


class RowStoreEngine(Engine):
    """Tuple-at-a-time scans over the row-major base image."""

    name = "row"

    def __init__(self, catalog, platform=None, use_indexes: bool = False, **kw):
        super().__init__(catalog, platform, **kw)
        self.use_indexes = use_indexes
        #: Queries answered through an index probe instead of a scan.
        self.index_answered = 0
        self._last_access_path = "scan"

    @property
    def access_path(self) -> str:
        return self._last_access_path

    # ------------------------------------------------------------------
    # Index probe path (§III-A point queries).
    # ------------------------------------------------------------------
    def _indexed_equality(self, bound: BoundQuery):
        """Return (index, column, constant) for the first equality
        conjunct over an indexed column, or None."""
        table_name = bound.table.schema.name
        for conj in bound.where_conjuncts:
            if not (isinstance(conj, Compare) and conj.op == "="):
                continue
            if isinstance(conj.left, ColumnRef) and isinstance(conj.right, Literal):
                col, lit = conj.left.name, conj.right.value
            elif isinstance(conj.right, ColumnRef) and isinstance(conj.left, Literal):
                col, lit = conj.right.name, conj.left.value
            else:
                continue
            index = self.catalog.index_on(table_name, col)
            if index is not None:
                dtype = bound.table.schema.column(col).dtype
                key = lit
                if dtype.scale and isinstance(lit, (int, float)):
                    key = lit  # index built over query-facing values
                return index, col, key
        return None

    def _fetch_via_index(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        ledger: CostLedger,
        probe,
    ) -> Tuple[Dict[str, np.ndarray], int, Optional[np.ndarray]]:
        import math

        index, column, key = probe
        table = bound.table
        slots = np.asarray(sorted(index.search(key)), dtype=np.int64)

        vis = self._visibility(bound, snapshot_ts)
        if vis is not None and len(slots):
            slots = slots[vis[slots]]

        cpu = self.cpu
        # Tree descent: one random access per level, plus the leaf walk.
        levels = max(1, getattr(index, "height", 1))
        ledger.charge(
            CostLedger.MEMORY,
            self.memory.random(levels, table.nrows * 16).total,
        )
        ledger.charge(CostLedger.CPU, cpu.function_calls(levels * 8))
        # Fetch the full row of every match (point reads).
        fetch = self.memory.random(
            max(1, len(slots)), table.nrows * table.schema.row_stride
        )
        ledger.charge(CostLedger.MEMORY, fetch.total)
        ledger.charge_traffic(len(slots) * 64)
        ledger.charge(CostLedger.CPU, cpu.volcano_tuples(len(slots)))
        # Residual predicate evaluation on the fetched tuples only.
        ledger.charge(
            CostLedger.CPU, cpu.predicates(len(slots) * bound.where_op_count)
        )

        columns = {}
        for name in bound.referenced_columns:
            values = table.column_values(name)
            columns[name] = values[slots]
        mask, _ = self._apply_filter(bound, columns, len(slots))
        self._last_access_path = "index-probe"
        self.index_answered += 1
        return columns, len(slots), mask

    def _fetch(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        ledger: CostLedger,
    ) -> Tuple[Dict[str, np.ndarray], int, Optional[np.ndarray]]:
        if self.use_indexes and bound.where is not None:
            probe = self._indexed_equality(bound)
            if probe is not None:
                return self._fetch_via_index(bound, snapshot_ts, ledger, probe)
        self._last_access_path = "scan"
        return self._fetch_scan(bound, snapshot_ts, ledger)

    def _fetch_scan(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        ledger: CostLedger,
    ) -> Tuple[Dict[str, np.ndarray], int, Optional[np.ndarray]]:
        table = bound.table
        n_slots = table.nrows
        cpu = self.cpu

        # Visibility + decode + WHERE — pure bookkeeping, shared across
        # engines, charged nothing (the cost recipe below prices it).
        vis, visible, columns, mask, qualifying = self._scan_preamble(
            bound, snapshot_ts
        )

        # Memory: the full row image streams through the caches — the
        # projectivity of the query does not reduce traffic one byte. The
        # image lives at a stable region so repeated scans in trace mode
        # revisit the same lines (warm caches) instead of fresh ones.
        nbytes = n_slots * table.schema.row_stride
        base = self.memory.region(("rows", table.schema.name), nbytes)
        mem = self.memory.sequential(nbytes, base_addr=base)
        ledger.charge_traffic(nbytes)

        # CPU: the Volcano interpretation loop over every slot.
        cpu_cycles = cpu.volcano_tuples(n_slots)
        if vis is not None:
            # Timestamp visibility is evaluated on the CPU: two extracted
            # fields and two comparisons per slot.
            cpu_cycles += cpu.field_extracts(2 * n_slots)
            cpu_cycles += cpu.predicates(2 * n_slots)

        # Selection: extract the predicate's fields and evaluate it for
        # every visible tuple; one data-dependent branch per tuple.
        n_sel = len(bound.selection_columns)
        if bound.where is not None:
            sel = qualifying / visible if visible else 0.0
            cpu_cycles += cpu.field_extracts(visible * n_sel)
            cpu_cycles += cpu.predicates(visible * bound.where_op_count)
            cpu_cycles += cpu.branch_misses(visible, sel)

        # Projection arithmetic only runs for qualifying tuples.
        proj_only = [
            c for c in bound.projection_columns if c not in bound.selection_columns
        ]
        cpu_cycles += cpu.field_extracts(qualifying * len(proj_only))
        cpu_cycles += (
            qualifying * bound.output_op_count * self.platform.cpu.scalar_op_cycles
        )

        # The covered stream overlaps with interpretation; exposed latency
        # (none for a pure row scan) would not.
        self._charge_scan(ledger, mem, cpu=cpu_cycles)
        return columns, visible, mask
