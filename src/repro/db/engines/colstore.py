"""The column-store baseline: column-at-a-time over a materialized copy.

This is the paper's COL comparator (Section V: "an in-memory column-store
following the column-at-at-time processing model"). It keeps a **second
copy** of the data in columnar layout — exactly the duplication the
fabric removes — so it also carries the HTAP burdens the paper lists:
conversion cost on every sync and staleness between syncs.

Execution model (MonetDB-style column-at-a-time with late
materialization):

* the first predicate streams its column(s) sequentially and materializes
  a candidate list;
* every further predicate *gathers* candidate positions from its column —
  irregular accesses the prefetcher cannot cover (exposed latency), the
  price of late materialization;
* projection columns are likewise gathered when a selection exists;
* each operator materializes its intermediate (full vectors);
* concurrent column streams beyond the prefetcher's capacity degrade to
  demand misses — the Figure 5 crossover mechanism.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ledger import CostLedger
from repro.db.engines.base import Engine
from repro.db.catalog import Catalog
from repro.db.plan.binder import BoundQuery
from repro.db.table import Table
from repro.errors import ExecutionError
from repro.hw.analytic import MemCost, ZERO_COST
from repro.hw.config import PlatformConfig


class ColumnarReplica:
    """The columnar copy of one table, with staleness tracking."""

    def __init__(self, table: Table):
        self.table = table
        self._columns: Dict[str, np.ndarray] = {}
        self._synced_version: int = -1
        self.synced_rows: int = 0
        self.sync_count: int = 0

    @property
    def is_stale(self) -> bool:
        return self._synced_version != self.table.version

    @property
    def stale_rows(self) -> int:
        """Rows ingested since the last sync — invisible to analytics
        until the next conversion (the data-freshness gap)."""
        return self.table.nrows - self.synced_rows

    def sync(self) -> None:
        """Rebuild the columnar copy from the row image."""
        table = self.table
        self._columns = {
            c.name: np.copy(table.column_values(c.name)) for c in table.schema.columns
        }
        self._synced_version = table.version
        self.synced_rows = table.nrows
        self.sync_count += 1

    def column(self, name: str) -> np.ndarray:
        if self.is_stale:
            raise ExecutionError(
                f"columnar replica of {self.table.schema.name!r} is stale; "
                "sync() first (the engine does this automatically)"
            )
        return self._columns[name]

    def conversion_cost_cycles(self, engine: "ColumnStoreEngine") -> float:
        """Simulated cost of one full layout conversion: read the row
        image, write every column array."""
        table = self.table
        nbytes = table.nrows * table.schema.row_stride
        read = engine.memory.sequential(nbytes)
        write = engine.memory.sequential(nbytes, write=True)
        n_values = table.nrows * len(table.schema.columns)
        return read.total + write.total + engine.cpu.vector_ops(n_values)


class ColumnStoreEngine(Engine):
    """Column-at-a-time scans over per-table columnar replicas."""

    name = "column"
    #: One stream per referenced column: fragments key on the stream set
    #: (types in positional order), not row offsets.
    fragment_layout = "column"

    def __init__(self, catalog: Catalog, platform: Optional[PlatformConfig] = None, **kw):
        super().__init__(catalog, platform, **kw)
        self._replicas: Dict[str, ColumnarReplica] = {}
        #: Cycles spent converting layouts (outside queries) — the HTAP
        #: bookkeeping cost the fabric eliminates. Conversion work still
        #: advances the metrics clock: it is simulated time the system
        #: spends, even though no query ledger carries it.
        self.conversion_ledger = CostLedger(metrics=self.metrics)

    @property
    def access_path(self) -> str:
        return "column-scan"

    def replica_of(self, table: Table) -> ColumnarReplica:
        name = table.schema.name
        if name not in self._replicas:
            self._replicas[name] = ColumnarReplica(table)
        return self._replicas[name]

    def _synced_replica(self, table: Table) -> ColumnarReplica:
        replica = self.replica_of(table)
        if replica.is_stale:
            # Conversion is HTAP bookkeeping, priced on its own ledger —
            # the span carries its extent on the timeline but no query
            # charges (the query ledger never included conversion).
            with self._span(
                "replica.sync",
                table=table.schema.name,
                rows_in=table.nrows,
                stale_rows=replica.stale_rows,
                layer="replica",
            ) as span:
                cost = replica.conversion_cost_cycles(self)
                self.conversion_ledger.charge("layout_conversion", cost)
                replica.sync()
                span.set_duration(cost)
        return replica

    def _fetch(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        ledger: CostLedger,
    ) -> Tuple[Dict[str, np.ndarray], int, Optional[np.ndarray]]:
        table = bound.table
        replica = self._synced_replica(table)
        cpu = self.cpu
        cfg = self.platform.cpu
        n_slots = table.nrows
        width_of = {
            c: table.schema.column(c).dtype.width for c in bound.referenced_columns
        }

        # Visibility + decode + WHERE — the shared preamble; the cost
        # recipe below prices these steps (streams, intermediates).
        vis, visible, columns, mask, qualifying = self._scan_preamble(
            bound, snapshot_ts, column_source=replica.column
        )

        cpu_cycles = 0.0
        mem = ZERO_COST
        # Lockstep column streams, keyed so each column keeps a stable
        # address region across queries (trace mode then sees warm cache
        # state on repeated scans instead of fresh allocations).
        tname = table.schema.name
        full_streams: List[int] = []
        stream_keys: List[tuple] = []

        def add_stream(column: str, size: int) -> None:
            full_streams.append(size)
            stream_keys.append(("col", tname, column))

        if vis is not None:
            # Visibility: two timestamp column streams, a vectorized
            # compare pair, one mask intermediate.
            add_stream("__begin_ts", n_slots * 8)
            add_stream("__end_ts", n_slots * 8)
            cpu_cycles += cpu.vector_ops(2 * n_slots)
            cpu_cycles += cpu.intermediates(n_slots)
            mem = mem + self.memory.sequential(
                n_slots,
                base_addr=self.memory.region(("mask", tname), n_slots),
                write=True,
            )

        # Per-row consumption loop over the lockstep column streams (the
        # paper's COL kernel: values of k separate arrays stitched back
        # into tuples row by row).
        reconstruct_cycles = 0.0
        cpu_cycles += cpu.vector_ops(2 * visible)  # loop control per row

        proj_only = [
            c for c in bound.projection_columns if c not in bound.selection_columns
        ]
        if bound.where is not None:
            sel = qualifying / visible if visible else 0.0
            for c in bound.selection_columns:
                add_stream(c, n_slots * width_of[c])
            reconstruct_cycles += cpu.reconstructions(
                visible * len(bound.selection_columns)
            )
            cpu_cycles += cpu.predicates(visible * bound.where_op_count)
            cpu_cycles += cpu.branch_misses(visible, sel)
            # Projection columns are touched lazily, only on qualifying
            # rows: dense survivors behave like one more concurrent stream
            # (and count against the prefetcher's capacity), sparse ones
            # pay demand latency per touched line.
            density = qualifying / visible if visible else 0.0
            for c in proj_only:
                w = width_of[c]
                per_line = max(1, 64 // w)
                occupancy = 1.0 - (1.0 - density) ** per_line
                if occupancy >= 0.5:
                    add_stream(c, int(occupancy * n_slots * w))
                else:
                    mem = mem + self.memory.gather(qualifying, n_slots, w)
            reconstruct_cycles += cpu.reconstructions(qualifying * len(proj_only))
        else:
            for c in proj_only:
                add_stream(c, n_slots * width_of[c])
            reconstruct_cycles += cpu.reconstructions(visible * len(proj_only))

        cpu_cycles += (
            qualifying * bound.output_op_count * self.platform.cpu.scalar_op_cycles
        )

        # A stream over a prefix of a column (lazy projection) reuses the
        # column's region: `region` keeps one base per key and only grows.
        full_bytes = {c: n_slots * width_of[c] for c in width_of}
        base_addrs = [
            self.memory.region(k, full_bytes.get(k[2], s))
            for k, s in zip(stream_keys, full_streams)
        ]
        mem = mem + self.memory.multi_stream(full_streams, base_addrs=base_addrs)
        ledger.charge_traffic(sum(full_streams))

        # Covered streams overlap with the per-row work (including the
        # stitching); exposed latency does not.
        self._charge_scan(
            ledger, mem, cpu=cpu_cycles, tuple_reconstruction=reconstruct_cycles
        )
        return columns, visible, mask
