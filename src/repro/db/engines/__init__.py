"""The three engines under test: ROW (Volcano row store), COL
(column-at-a-time column store) and RM (ephemeral scans via the fabric)."""

from repro.db.engines.base import Engine, ExecutionResult
from repro.db.engines.colstore import ColumnarReplica, ColumnStoreEngine
from repro.db.engines.rmstore import RelationalMemoryEngine
from repro.db.engines.rowstore import RowStoreEngine

__all__ = [
    "ColumnStoreEngine",
    "ColumnarReplica",
    "Engine",
    "ExecutionResult",
    "RelationalMemoryEngine",
    "RowStoreEngine",
]


def all_engines(catalog, platform=None, **kw):
    """The standard trio, keyed by name — what every figure sweeps."""
    return {
        "row": RowStoreEngine(catalog, platform, **kw),
        "column": ColumnStoreEngine(catalog, platform, **kw),
        "rm": RelationalMemoryEngine(catalog, platform, **kw),
    }
