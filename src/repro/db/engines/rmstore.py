"""The Relational Memory engine: queries over ephemeral column groups.

The access path of the paper's RM (Section V): the fabric packs exactly
the referenced columns into dense lines; the CPU runs the scalar kernel
of Figure 3 over the ephemeral struct (default ``consumption="scalar"``),
a vectorized loop over the packed stream (``consumption="vector"``), or
picks whichever the cost model prefers per query
(``consumption="auto"`` — the Section III-B "hybrid query engine that
can alternate between row-at-a-time and column-at-a-time while working
on the same base data").

Optional fabric pushdown (Section IV-B, off by default to match the
prototype): simple ``column <op> constant`` conjuncts are evaluated by
comparators in the fabric so only qualifying rows are emitted, and with
``aggregate_pushdown=True`` a qualifying single-aggregate query is
reduced entirely in the fabric — the ephemeral variable then contains
"only the required data or the aggregation result". MVCC visibility
(Section III-C) is always evaluated in the fabric when a snapshot is
given.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.ephemeral import Visibility
from repro.core.fabric import RelationalMemory
from repro.core.ledger import CostLedger
from repro.core.selection import CompareOp, FabricFilter, FabricPredicate
from repro.db.engines.base import Engine
from repro.db.catalog import Catalog
from repro.db.expr import ColumnRef, Compare, Expr, Literal
from repro.db.plan.binder import BoundQuery
from repro.errors import ExecutionError, FaultError
from repro.faults import CircuitBreaker, FaultInjector, RetryPolicy
from repro.hw.config import PlatformConfig
from repro.obs import Span, Trace, active, maybe_span

_PUSHABLE_OPS = {
    "<": CompareOp.LT,
    "<=": CompareOp.LE,
    ">": CompareOp.GT,
    ">=": CompareOp.GE,
    "=": CompareOp.EQ,
    "<>": CompareOp.NE,
}


class RelationalMemoryEngine(Engine):
    """Scans through ephemeral column groups served by the fabric."""

    name = "rm"
    #: The fabric delivers densely packed groups: fragments key on the
    #: accessed types in positional order, not physical offsets.
    fragment_layout = "ephemeral"

    #: Flat detour cost of noticing the fabric is unusable and dispatching
    #: the query to the software path (breaker check + plan switch).
    FALLBACK_DISPATCH_CYCLES = 200.0

    def __init__(
        self,
        catalog: Catalog,
        platform: Optional[PlatformConfig] = None,
        consumption: str = "scalar",
        pushdown: bool = False,
        aggregate_pushdown: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fallback: bool = True,
        **kw,
    ):
        super().__init__(catalog, platform, **kw)
        if consumption not in ("scalar", "vector", "auto"):
            raise ExecutionError(f"unknown consumption mode {consumption!r}")
        self.consumption = consumption
        self.pushdown = pushdown
        self.aggregate_pushdown = aggregate_pushdown
        self.fabric = RelationalMemory(
            self.platform, fault_injector=fault_injector, tracer=self.tracer
        )
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        #: When True (the default), a query whose fabric path faults past
        #: the retry budget transparently re-executes on the rowstore scan
        #: path over the same base data — the paper's transparency claim.
        self.fallback = fallback
        #: Queries answered entirely in the fabric (aggregation pushdown).
        self.fabric_answered = 0
        #: Fabric faults observed (each faulted attempt counts once).
        self.faults_seen = 0
        #: Queries answered by the degraded software path.
        self.fallbacks = 0
        self._last_access_path = "ephemeral-scan"
        self._fallback_engine = None
        if self.metrics is not None:
            from repro.obs.collectors import (
                register_breaker,
                register_fault_injector,
                register_rm_engine,
            )

            register_rm_engine(self.metrics, self.fabric.engine, engine=self.name)
            register_breaker(self.metrics, self.breaker, engine=self.name)
            if fault_injector is not None:
                register_fault_injector(
                    self.metrics, fault_injector, engine=self.name
                )

    @property
    def access_path(self) -> str:
        return self._last_access_path

    # ------------------------------------------------------------------
    # Resilient dispatch: retry, breaker, software fallback.
    # ------------------------------------------------------------------
    def execute(self, query, snapshot_ts=None):
        """Run one query; on fabric faults, retry with backoff and —
        past the retry budget or with the breaker open — re-execute on
        the rowstore scan path over the same base data.

        The whole dispatch (every attempt, the retry penalties, a
        possible degraded re-execution) runs under one ``dispatch`` span,
        so a traced degraded query shows the faulted attempts next to the
        answer that replaced them. ``result.trace`` is that dispatch
        tree; on the fault-free path it has a single ``query`` child.
        """
        bound = self.bind(query) if isinstance(query, str) else query
        tracer = active(self.tracer)
        with maybe_span(
            tracer, "dispatch", engine=self.name, layer="engine"
        ) as dispatch:
            result = self._dispatch(bound, snapshot_ts)
            dispatch.set_attrs(
                mode=self._last_access_path, degraded=result.degraded
            )
        if isinstance(dispatch, Span):
            result.trace = Trace(dispatch)
        return result

    def _dispatch(self, bound, snapshot_ts):
        policy = self.retry_policy
        penalty = 0.0
        last_fault: Optional[FaultError] = None
        for attempt in range(policy.retries + 1):
            if not self.breaker.allow():
                break
            try:
                result = self._execute_rm(bound, snapshot_ts)
            except FaultError as exc:
                self.faults_seen += 1
                self.breaker.record_failure()
                last_fault = exc
                # The geometry programming of the failed attempt is lost;
                # waiting out the backoff before re-arming costs cycles.
                penalty += self.platform.rm.configure_cycles
                if attempt < policy.retries:
                    penalty += policy.backoff(attempt)
                continue
            self.breaker.record_success()
            if penalty:
                result.ledger.charge(CostLedger.RETRY, penalty)
            return result
        if not self.fallback:
            raise last_fault if last_fault is not None else ExecutionError(
                "fabric unavailable (circuit breaker open) and fallback disabled"
            )
        return self._execute_degraded(bound, snapshot_ts, penalty)

    def _execute_degraded(self, bound, snapshot_ts, penalty: float):
        """The transparency guarantee: same base data, software scan."""
        from repro.db.engines.rowstore import RowStoreEngine

        if self._fallback_engine is None:
            self._fallback_engine = RowStoreEngine(
                self.catalog, self.platform, threads=self.threads,
                tracer=self.tracer, metrics=self.metrics,
                exec_mode=self.exec_mode,
            )
        self.fallbacks += 1
        self._last_access_path = "degraded-rowstore-scan"
        fb = self._fallback_engine.execute(bound, snapshot_ts)
        fb.ledger.charge(
            CostLedger.DEGRADED, penalty + self.FALLBACK_DISPATCH_CYCLES
        )
        return replace(
            fb,
            engine=self.name,
            degraded=True,
            plan=fb.plan + "\n[degraded: fabric faulted, rowstore fallback]",
        )

    def _execute_rm(self, bound: BoundQuery, snapshot_ts):
        """One attempt on the fabric path (pushdown, then ephemeral scan)."""
        self._last_access_path = "ephemeral-scan"
        if self.aggregate_pushdown:
            fast = self._try_fabric_aggregate(bound, snapshot_ts)
            if fast is not None:
                self.fabric_answered += 1
                return fast
        return super().execute(bound, snapshot_ts)

    _FABRIC_AGGS = ("sum", "min", "max", "count")

    def _try_fabric_aggregate(self, bound: BoundQuery, snapshot_ts):
        """Return an ExecutionResult if the whole query reduces in the
        fabric (single simple aggregate, fully pushable predicate), else
        None to fall back to the ephemeral-scan path."""
        import numpy as np

        from repro.core.mvcc_filter import visible_mask
        from repro.core.selection import FabricAggregate
        from repro.db.engines.base import ExecutionResult
        from repro.db.plan.logical import explain
        from repro.db.exec.result import QueryResult

        if (
            bound.group_by
            or bound.joins
            or len(bound.outputs) != 1
            or bound.outputs[0].kind not in self._FABRIC_AGGS
        ):
            return None
        output = bound.outputs[0]
        schema = bound.table.schema
        agg_column = None
        if output.expr is not None:
            if not isinstance(output.expr, ColumnRef):
                return None
            agg_column = output.expr.name
            if schema.column(agg_column).dtype.np_dtype is None:
                return None
        elif output.kind != "count":
            return None

        residual: List[Expr] = []
        pushed: List[FabricPredicate] = []
        if bound.where is not None:
            pushed, residual = self._pushable(bound)
            if residual:
                return None

        table = bound.table
        frame = table.frame
        base_geometry = schema.full_geometry()
        mask = None
        if snapshot_ts is not None and schema.mvcc:
            mask = visible_mask(table.begin_ts, table.end_ts, snapshot_ts)
        if pushed:
            fmask = FabricFilter(predicates=tuple(pushed)).evaluate(
                frame, base_geometry
            )
            mask = fmask if mask is None else (mask & fmask)

        if mask is not None and output.kind in ("min", "max"):
            if not np.any(mask):
                # min/max of an empty set has no hardware encoding the
                # software semantics expect; fall back to the scan path.
                return None
        field = agg_column if agg_column is not None else schema.column_names[0]
        raw = FabricAggregate(field=field, kind=output.kind).evaluate(
            frame, base_geometry, mask=mask
        )
        value = self._decode_aggregate(schema, agg_column, output.kind, raw)
        dtype = np.int64 if output.kind == "count" else np.float64
        result = QueryResult(
            names=(output.name,),
            columns={output.name: np.array([value], dtype=dtype)},
        )

        # Cost: the fabric scans the referenced fields of every row and
        # emits only the accumulator; the CPU reads one value.
        touched = schema.bytes_of(
            [c for c in bound.referenced_columns]
        )
        report = self.fabric.engine.transform(
            nrows=table.nrows,
            row_stride=schema.row_stride,
            out_bytes_per_row=max(1, touched),
            qualifying_rows=0,
            mvcc_filter=mask is not None and schema.mvcc,
            fabric_predicates=len(pushed),
        )
        ledger = CostLedger(tracer=active(self.tracer))
        with self._span(
            "fabric.aggregate",
            table=schema.name,
            layer="fabric",
            rows_in=table.nrows,
            rows_out=1,
            predicate=output.kind,
        ) as span:
            ledger.charge(CostLedger.CONFIGURE, report.configure_cycles)
            ledger.charge(CostLedger.FABRIC, report.produce_cycles)
            ledger.charge(CostLedger.CPU, 2 * self.platform.cpu.volcano_tuple_cycles)
            ledger.charge_traffic(report.dram_bytes_touched)
            span.add_counters(
                {
                    "fabric_dram_bytes": report.dram_bytes_touched,
                    "refills": report.refills,
                }
            )
        visible = table.nrows if mask is None else int(np.count_nonzero(mask))
        return ExecutionResult(
            engine=self.name,
            result=result,
            ledger=ledger,
            plan=explain(bound, access_path="fabric-aggregate"),
            visible_rows=visible,
            qualifying_rows=visible,
        )

    @staticmethod
    def _decode_aggregate(schema, agg_column, kind, raw):
        if kind == "count" or agg_column is None:
            return int(raw)
        dtype = schema.column(agg_column).dtype
        if raw is None:
            return 0.0
        if dtype.scale:
            return float(raw) / 10**dtype.scale
        return float(raw)

    # ------------------------------------------------------------------
    # Pushdown analysis.
    # ------------------------------------------------------------------
    def _pushable(self, bound: BoundQuery) -> Tuple[List[FabricPredicate], List[Expr]]:
        """Split WHERE conjuncts into fabric comparators and CPU residue."""
        pushed: List[FabricPredicate] = []
        residual: List[Expr] = []
        schema = bound.table.schema
        for conj in bound.where_conjuncts:
            pred = None
            if isinstance(conj, Compare) and conj.op in _PUSHABLE_OPS:
                col, lit, flipped = self._column_vs_literal(conj)
                if col is not None and schema.has_column(col):
                    dtype = schema.column(col).dtype
                    if dtype.np_dtype is not None:
                        raw = lit
                        if dtype.scale:
                            raw = int(round(float(lit) * 10**dtype.scale))
                        op = _PUSHABLE_OPS[conj.op]
                        if flipped:
                            op = _flip(op)
                        pred = FabricPredicate(field=col, op=op, constant=raw)
            if pred is not None:
                pushed.append(pred)
            else:
                residual.append(conj)
        return pushed, residual

    @staticmethod
    def _column_vs_literal(cmp: Compare):
        if isinstance(cmp.left, ColumnRef) and isinstance(cmp.right, Literal):
            return cmp.left.name, cmp.right.value, False
        if isinstance(cmp.right, ColumnRef) and isinstance(cmp.left, Literal):
            return cmp.right.name, cmp.left.value, True
        return None, None, False

    # ------------------------------------------------------------------
    # Access path.
    # ------------------------------------------------------------------
    def _fetch(
        self,
        bound: BoundQuery,
        snapshot_ts: Optional[int],
        ledger: CostLedger,
    ) -> Tuple[Dict[str, np.ndarray], int, Optional[np.ndarray]]:
        table = bound.table
        schema = table.schema
        cpu = self.cpu

        geometry = schema.geometry(bound.referenced_columns)
        visibility = None
        if snapshot_ts is not None and schema.mvcc:
            visibility = Visibility(
                begin_ts=table.begin_ts,
                end_ts=table.end_ts,
                snapshot_ts=snapshot_ts,
            )

        fabric_filter = None
        residual_ops = bound.where_op_count
        if self.pushdown and bound.where is not None:
            pushed, residual = self._pushable(bound)
            if pushed:
                fabric_filter = FabricFilter(predicates=tuple(pushed))
                from repro.db.expr import op_count

                residual_ops = sum(op_count(r) for r in residual)

        with self._span(
            "fabric.transform",
            table=schema.name,
            layer="fabric",
            rows_in=table.nrows,
            pushed_predicates=0 if fabric_filter is None else len(
                fabric_filter.predicates
            ),
        ) as fspan:
            group = self.fabric.configure(
                table.frame,
                geometry,
                base_geometry=schema.full_geometry(),
                fabric_filter=fabric_filter,
                visibility=visibility,
            )
            group.refresh()
            report = group.report
            emitted = group.length
            fspan.set_attrs(rows_out=emitted)
            fspan.add_counters(
                {
                    "fabric_dram_bytes": report.dram_bytes_touched,
                    "out_bytes": report.out_bytes,
                    "refills": report.refills,
                }
            )

        columns = self._decode_group(bound, group)
        mask, qualifying = self._apply_filter(bound, columns, emitted)

        # ---------------- consume-side costs ----------------
        # The packed stream arrives through the fabric's ephemeral buffer
        # window — one stable region per (table, column-group), reused
        # across refreshes, not a fresh allocation per query.
        packed_bytes = emitted * geometry.packed_width
        window = self.memory.region(
            ("ephemeral", schema.name, bound.referenced_columns), packed_bytes
        )
        mem = self.memory.sequential(packed_bytes, base_addr=window)
        cpu_cycles = self._consume_cpu(
            bound, emitted, qualifying, residual_ops, fabric_filter is not None
        )

        # The packed stream is prefetch-covered and overlaps the kernel;
        # the fabric's production pipeline overlaps the whole consume side.
        # (The fabric engine itself is a single shared unit: its produce
        # rate does not scale with CPU threads.)
        with self._span(
            "consume", mode=self.consumption, rows_in=emitted
        ) as cspan:
            consume = self._charge_scan(ledger, mem, cpu=cpu_cycles)
            cspan.set_attrs(mode=self.last_consumption)
        exposed_fabric = max(0.0, report.produce_cycles - consume)

        with self._span("fabric.produce", layer="fabric"):
            ledger.charge(CostLedger.FABRIC, exposed_fabric)
            ledger.charge(CostLedger.STALL, report.refill_stall_cycles)
        with self._span("fabric.configure", layer="fabric"):
            ledger.charge(CostLedger.CONFIGURE, report.configure_cycles)
        ledger.charge_traffic(report.dram_bytes_touched)
        return columns, emitted, mask

    def _consume_cpu(
        self,
        bound: BoundQuery,
        emitted: int,
        qualifying: int,
        residual_ops: int,
        pushed: bool,
    ) -> float:
        if self.consumption == "auto":
            # The hybrid engine of §III-B: run whichever consumption style
            # the cost model says is cheaper for this query.
            scalar = self._consume_cpu_mode(
                "scalar", bound, emitted, qualifying, residual_ops, pushed
            )
            vector = self._consume_cpu_mode(
                "vector", bound, emitted, qualifying, residual_ops, pushed
            )
            self.last_consumption = "scalar" if scalar <= vector else "vector"
            return min(scalar, vector)
        self.last_consumption = self.consumption
        return self._consume_cpu_mode(
            self.consumption, bound, emitted, qualifying, residual_ops, pushed
        )

    #: Consumption style picked by the most recent query ("auto" mode).
    last_consumption: str = "scalar"

    def _consume_cpu_mode(
        self,
        mode: str,
        bound: BoundQuery,
        emitted: int,
        qualifying: int,
        residual_ops: int,
        pushed: bool,
    ) -> float:
        cpu = self.cpu
        cfg = self.platform.cpu
        n_sel = len(bound.selection_columns)
        n_proj_only = len(
            [c for c in bound.projection_columns if c not in bound.selection_columns]
        )
        if mode == "scalar":
            cycles = emitted * cfg.ephemeral_tuple_cycles
            cycles += emitted * n_sel * cfg.packed_field_cycles
            cycles += qualifying * n_proj_only * cfg.packed_field_cycles
            if residual_ops:
                sel = qualifying / emitted if emitted else 0.0
                cycles += cpu.predicates(emitted * residual_ops)
                cycles += cpu.branch_misses(emitted, sel)
            cycles += qualifying * bound.output_op_count * cfg.scalar_op_cycles
            return cycles
        # Vectorized consumption over the packed stream: no per-tuple
        # interpretation, no reconstruction (values arrive side by side),
        # intermediates as in the column engine.
        cycles = cpu.vector_ops(emitted * residual_ops)
        cycles += cpu.vector_ops(qualifying * bound.output_op_count)
        n_conjuncts = len(bound.where_conjuncts) if not pushed else 1
        if residual_ops:
            cycles += cpu.intermediates(emitted * n_conjuncts)
        if bound.output_op_count > 1:
            cycles += cpu.intermediates(qualifying * (bound.output_op_count - 1))
        return cycles

    def _decode_group(self, bound: BoundQuery, group) -> Dict[str, np.ndarray]:
        schema = bound.table.schema
        out: Dict[str, np.ndarray] = {}
        for name in bound.referenced_columns:
            raw = group.column(name)
            dtype = schema.column(name).dtype
            if dtype.np_dtype is None:
                out[name] = np.ascontiguousarray(raw).view(f"S{dtype.width}").reshape(-1)
            else:
                out[name] = dtype.decode_array(raw)
        return out
