"""Horizontal partitioning and sharding with fabric integration (§III-A).

"Contrary to vertical partitioning that can happen on-the-fly using
Relational Fabric, horizontal partitioning decisions would still need to
be evaluated at physical design time. ... Another functionality that
Relational Fabric can integrate is to handle the communication with
storage devices while exposing its simple ephemeral columns API to the
query. That way, the data system can request the desired column group on
a sharding key range, and the Relational Fabric will directly return the
corresponding data to the query."

:class:`ShardedTable` range-partitions rows on a shard key across
independent :class:`~repro.db.table.Table` shards;
:meth:`ShardedTable.column_group` serves exactly that API — an ephemeral
column group restricted to a key range, touching only the shards that
overlap it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.ephemeral import EphemeralColumnGroup
from repro.core.fabric import RelationalMemory
from repro.core.selection import CompareOp, FabricFilter, FabricPredicate
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.errors import SchemaError
from repro.hw.config import PlatformConfig
from repro.hw.engine import RmTransformReport


@dataclass
class ShardScan:
    """One shard's contribution to a ranged column-group request."""

    shard_index: int
    group: EphemeralColumnGroup

    @property
    def report(self) -> RmTransformReport:
        return self.group.report


class ShardedTable:
    """A relation range-partitioned on one numeric key column.

    ``boundaries`` are the split points: shard *i* holds keys in
    ``[boundaries[i-1], boundaries[i])`` with open ends at both sides.
    """

    def __init__(
        self,
        schema: TableSchema,
        shard_key: str,
        boundaries: Sequence[int],
        platform: Optional[PlatformConfig] = None,
    ):
        column = schema.column(shard_key)
        if column.dtype.np_dtype is None:
            raise SchemaError(f"shard key {shard_key!r} must be numeric")
        if list(boundaries) != sorted(set(boundaries)):
            raise SchemaError("shard boundaries must be strictly increasing")
        self.schema = schema
        self.shard_key = shard_key
        self.boundaries = list(boundaries)
        self.shards: List[Table] = [
            Table(schema) for _ in range(len(self.boundaries) + 1)
        ]
        self.fabric = RelationalMemory(platform)

    # ------------------------------------------------------------------
    # Routing.
    # ------------------------------------------------------------------
    def shard_of(self, key: int) -> int:
        """Index of the shard holding ``key``."""
        return bisect.bisect_right(self.boundaries, key)

    def shards_for_range(
        self, low: Optional[int] = None, high: Optional[int] = None
    ) -> List[int]:
        """Shards overlapping the inclusive key range ``[low, high]``.

        ``None`` means an open end: ``shards_for_range()`` is every
        shard, ``shards_for_range(high=k)`` every shard up to ``k``'s. An
        empty range (``low > high``) overlaps nothing.
        """
        first = 0 if low is None else self.shard_of(low)
        last = len(self.boundaries) if high is None else self.shard_of(high)
        if low is not None and high is not None and low > high:
            return []
        return list(range(first, last + 1))

    def shard_bounds(self, index: int) -> Tuple[Optional[int], Optional[int]]:
        """Inclusive key bounds ``(low, high)`` of shard ``index``;
        ``None`` marks an open end. Shard *i* holds keys in
        ``[boundaries[i-1], boundaries[i])``, so the inclusive high bound
        is ``boundaries[i] - 1`` (integer keys)."""
        if not 0 <= index < len(self.shards):
            raise SchemaError(
                f"shard index {index} out of range [0, {len(self.shards)})"
            )
        low = self.boundaries[index - 1] if index > 0 else None
        high = (
            self.boundaries[index] - 1
            if index < len(self.boundaries)
            else None
        )
        return low, high

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def insert(self, values: Mapping[str, object]) -> Tuple[int, int]:
        """Route one row; returns (shard index, slot within shard)."""
        key = values[self.shard_key]
        shard = self.shard_of(int(key))
        return shard, self.shards[shard].append_row(values)

    def bulk_load(self, columns: Mapping[str, np.ndarray]) -> None:
        """Split whole column arrays across shards in one pass."""
        keys = np.asarray(columns[self.shard_key])
        assignment = np.searchsorted(self.boundaries, keys, side="right")
        for shard_idx in range(len(self.shards)):
            mask = assignment == shard_idx
            if not mask.any():
                continue
            self.shards[shard_idx].append_arrays(
                {name: np.asarray(arr)[mask] for name, arr in columns.items()}
            )

    @property
    def nrows(self) -> int:
        return sum(shard.nrows for shard in self.shards)

    @property
    def nbytes(self) -> int:
        return sum(shard.nbytes for shard in self.shards)

    # ------------------------------------------------------------------
    # The fabric API over shards (§III-A).
    # ------------------------------------------------------------------
    def column_group(
        self,
        columns: Iterable[str],
        key_low: Optional[int] = None,
        key_high: Optional[int] = None,
    ) -> List[ShardScan]:
        """Ephemeral column groups for a shard-key range.

        Only shards overlapping the range are touched; within the
        boundary shards the fabric's comparators trim the partial range,
        interior shards ship unfiltered. Returns one scan per shard, in
        key order.
        """
        wanted = list(columns)
        geometry = self.schema.geometry(wanted)
        base = self.schema.full_geometry()
        indexes = [
            i
            for i in self.shards_for_range(key_low, key_high)
            if self.shards[i].nrows
        ]
        scans: List[ShardScan] = []
        for i in indexes:
            shard = self.shards[i]
            fabric_filter = self._boundary_filter(i, key_low, key_high)
            group = self.fabric.configure(
                shard.frame,
                geometry,
                base_geometry=base,
                fabric_filter=fabric_filter,
            )
            group.refresh()
            scans.append(ShardScan(shard_index=i, group=group))
        return scans

    def _boundary_filter(
        self, shard_index: int, key_low: Optional[int], key_high: Optional[int]
    ) -> Optional[FabricFilter]:
        """Range predicates needed on a boundary shard (None inside)."""
        predicates = []
        shard_lo, shard_hi = self.shard_bounds(shard_index)
        # A bound is needed only where it actually cuts into the shard:
        # keys on a shard's own (inclusive) bounds need no comparator, so
        # a range that exactly covers the shard — including a single-key
        # range on a single-row shard — ships unfiltered.
        if key_low is not None and (shard_lo is None or key_low > shard_lo):
            predicates.append(FabricPredicate(self.shard_key, CompareOp.GE, key_low))
        if key_high is not None and (shard_hi is None or key_high < shard_hi):
            predicates.append(FabricPredicate(self.shard_key, CompareOp.LE, key_high))
        if not predicates:
            return None
        return FabricFilter(predicates=tuple(predicates))

    def gather_column(
        self,
        name: str,
        key_low: Optional[int] = None,
        key_high: Optional[int] = None,
    ) -> np.ndarray:
        """Convenience: one decoded column concatenated across the
        qualifying shards."""
        scans = self.column_group([name], key_low, key_high)
        if not scans:
            # Match the column's real decoded dtype even when nothing
            # qualifies, so callers can concatenate without surprises.
            np_dtype = self.schema.column(name).dtype.np_dtype
            return np.zeros(0, dtype=np_dtype if np_dtype is not None else np.uint8)
        return np.concatenate([scan.group.column(name) for scan in scans])
