"""Expression trees with row-at-a-time and vectorized evaluators.

One AST serves the whole stack: the SQL parser produces it, the binder
resolves column references, the Volcano reference executor evaluates it
per row, the vectorized executor evaluates it over numpy columns, and
the engines' cost recipes ask :func:`op_count` how many primitive
operations one evaluation costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Tuple, Union

import numpy as np

from repro.errors import ExecutionError

Value = Union[int, float, str, bytes]


class Expr:
    """Base class; subclasses are frozen dataclasses."""

    def columns(self) -> FrozenSet[str]:
        """Every column name referenced below this node."""
        raise NotImplementedError

    def eval_row(self, row: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnRef(Expr):
    #: ``qualifier`` is the parsed table name/alias of a qualified
    #: reference (``o.amount``). The binder resolves and strips it, so
    #: bound expressions always carry ``qualifier=None`` — evaluators key
    #: batches by bare column name.
    name: str
    qualifier: "str | None" = None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def eval_row(self, row: Mapping[str, Any]) -> Any:
        try:
            return row[self.name]
        except KeyError:
            raise ExecutionError(f"row has no column {self.name!r}")

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> Any:
        try:
            return cols[self.name]
        except KeyError:
            raise ExecutionError(f"batch has no column {self.name!r}")

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal(Expr):
    value: Value

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def eval_row(self, row: Mapping[str, Any]) -> Any:
        return self.value

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _scalar(v: Any) -> Any:
    """Normalize one row-at-a-time comparison operand.

    numpy's vectorized ``S``-dtype comparisons ignore trailing NULs (the
    CHAR pad byte); Python ``bytes`` comparisons do not. Stripping here
    keeps the Volcano reference path bit-identical to the vectorized one
    when a CHAR column meets a width-padded literal.
    """
    if isinstance(v, bytes):
        return v.rstrip(b"\x00")
    return v


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic: ``left <op> right`` with op in ``+ - * /``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH:
            raise ExecutionError(f"unknown arithmetic operator {self.op!r}")

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def eval_row(self, row: Mapping[str, Any]) -> Any:
        return _ARITH[self.op](self.left.eval_row(row), self.right.eval_row(row))

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> Any:
        return _ARITH[self.op](self.left.eval_vector(cols), self.right.eval_vector(cols))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison producing a boolean: ``left <op> right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _COMPARE:
            raise ExecutionError(f"unknown comparison operator {self.op!r}")

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def eval_row(self, row: Mapping[str, Any]) -> Any:
        return _COMPARE[self.op](
            _scalar(self.left.eval_row(row)), _scalar(self.right.eval_row(row))
        )

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> Any:
        return _COMPARE[self.op](
            self.left.eval_vector(cols), self.right.eval_vector(cols)
        )

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class And(Expr):
    terms: Tuple[Expr, ...]

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for t in self.terms:
            out |= t.columns()
        return out

    def eval_row(self, row: Mapping[str, Any]) -> bool:
        return all(t.eval_row(row) for t in self.terms)

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> np.ndarray:
        out = None
        for t in self.terms:
            mask = t.eval_vector(cols)
            out = mask if out is None else (out & mask)
        return out

    def __str__(self) -> str:
        return "(" + " AND ".join(str(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Or(Expr):
    terms: Tuple[Expr, ...]

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for t in self.terms:
            out |= t.columns()
        return out

    def eval_row(self, row: Mapping[str, Any]) -> bool:
        return any(t.eval_row(row) for t in self.terms)

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> np.ndarray:
        out = None
        for t in self.terms:
            mask = t.eval_vector(cols)
            out = mask if out is None else (out | mask)
        return out

    def __str__(self) -> str:
        return "(" + " OR ".join(str(t) for t in self.terms) + ")"


@dataclass(frozen=True)
class Not(Expr):
    term: Expr

    def columns(self) -> FrozenSet[str]:
        return self.term.columns()

    def eval_row(self, row: Mapping[str, Any]) -> bool:
        return not self.term.eval_row(row)

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~self.term.eval_vector(cols)

    def __str__(self) -> str:
        return f"(NOT {self.term})"


@dataclass(frozen=True)
class Between(Expr):
    """``term BETWEEN low AND high`` (inclusive both ends, like SQL)."""

    term: Expr
    low: Expr
    high: Expr

    def columns(self) -> FrozenSet[str]:
        return self.term.columns() | self.low.columns() | self.high.columns()

    def eval_row(self, row: Mapping[str, Any]) -> bool:
        v = _scalar(self.term.eval_row(row))
        return (
            _scalar(self.low.eval_row(row)) <= v <= _scalar(self.high.eval_row(row))
        )

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> np.ndarray:
        v = self.term.eval_vector(cols)
        return (self.low.eval_vector(cols) <= v) & (v <= self.high.eval_vector(cols))

    def __str__(self) -> str:
        return f"({self.term} BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList(Expr):
    """``term IN (v1, v2, ...)`` over constant values.

    Evaluated as an OR of equality comparisons (not ``np.isin``) so
    CHAR semantics match :class:`Compare` exactly: the vectorized path
    inherits numpy's trailing-NUL-blind ``S``-dtype equality and the row
    path strips pad bytes via ``_scalar``.
    """

    term: Expr
    values: Tuple[Value, ...]

    def columns(self) -> FrozenSet[str]:
        return self.term.columns()

    def eval_row(self, row: Mapping[str, Any]) -> bool:
        v = _scalar(self.term.eval_row(row))
        return any(v == _scalar(x) for x in self.values)

    def eval_vector(self, cols: Mapping[str, np.ndarray]) -> np.ndarray:
        v = self.term.eval_vector(cols)
        out = None
        for x in self.values:
            mask = v == x
            out = mask if out is None else (out | mask)
        if out is None:
            return np.zeros(np.shape(v), dtype=bool)
        return out

    def __str__(self) -> str:
        inner = ", ".join(repr(x) for x in self.values)
        return f"({self.term} IN ({inner}))"


def op_count(expr: Expr) -> int:
    """Primitive operations per evaluation of ``expr`` — the engines'
    CPU-cost currency. Column refs and literals are free (counted by the
    engines as field extractions); every operator node costs one, BETWEEN
    costs two comparisons."""
    if isinstance(expr, (ColumnRef, Literal)):
        return 0
    if isinstance(expr, (BinOp, Compare)):
        return 1 + op_count(expr.left) + op_count(expr.right)
    if isinstance(expr, (And, Or)):
        return len(expr.terms) - 1 + sum(op_count(t) for t in expr.terms)
    if isinstance(expr, Not):
        return 1 + op_count(expr.term)
    if isinstance(expr, Between):
        return 2 + op_count(expr.term) + op_count(expr.low) + op_count(expr.high)
    if isinstance(expr, InList):
        # One equality per member plus the OR combines.
        return max(2 * len(expr.values) - 1, 1) + op_count(expr.term)
    raise ExecutionError(f"unknown expression node {type(expr).__name__}")


def conjuncts(expr: Expr) -> Tuple[Expr, ...]:
    """Split a predicate into top-level AND terms (for pushdown analysis)."""
    if isinstance(expr, And):
        out: Tuple[Expr, ...] = ()
        for t in expr.terms:
            out += conjuncts(t)
        return out
    return (expr,)
