"""Row-major table frames: the single copy of the base data.

The paper's design point is that base data lives in exactly one
row-oriented image (efficient to ingest and update) and every other
layout is ephemeral. :class:`Table` is that image: a ``(capacity,
row_stride)`` uint8 numpy array, with append fast paths both for Python
rows (OLTP style) and whole column arrays (bulk load).

When the schema carries MVCC columns the table also maintains the
begin/end timestamp stamps; the transaction manager in
:mod:`repro.db.mvcc` drives them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.mvcc_filter import LIVE_TS, NEVER_TS
from repro.core.packer import decode_frame_field
from repro.db.schema import MVCC_BEGIN, MVCC_END, TableSchema
from repro.errors import SchemaError

_INITIAL_CAPACITY = 64


class Table:
    """A row-oriented relational table over one contiguous byte frame."""

    def __init__(self, schema: TableSchema, capacity: int = _INITIAL_CAPACITY):
        self.schema = schema
        self._frame = np.zeros((max(capacity, 1), schema.row_stride), dtype=np.uint8)
        self.nrows = 0
        #: Monotonic mutation counter; columnar replicas compare against it
        #: to detect staleness (the HTAP freshness story).
        self.version = 0

    # ------------------------------------------------------------------
    # Storage management.
    # ------------------------------------------------------------------
    @property
    def frame(self) -> np.ndarray:
        """The live row image, ``(nrows, row_stride)`` uint8."""
        return self._frame[: self.nrows]

    @property
    def nbytes(self) -> int:
        """Bytes of live row data (the paper's data-size axis)."""
        return self.nrows * self.schema.row_stride

    def _ensure_capacity(self, extra: int) -> None:
        needed = self.nrows + extra
        if needed <= self._frame.shape[0]:
            return
        new_cap = max(needed, self._frame.shape[0] * 2)
        grown = np.zeros((new_cap, self.schema.row_stride), dtype=np.uint8)
        grown[: self.nrows] = self._frame[: self.nrows]
        self._frame = grown

    # ------------------------------------------------------------------
    # Ingestion.
    # ------------------------------------------------------------------
    def append_row(self, values: Mapping[str, Any]) -> int:
        """Append one row from a column→value mapping; returns its index.

        MVCC tables default the new row to (NEVER, LIVE): invisible until
        a transaction stamps its begin timestamp.
        """
        self._ensure_capacity(1)
        idx = self.nrows
        row = self._frame[idx]
        provided = dict(values)
        if self.schema.mvcc:
            provided.setdefault(MVCC_BEGIN, NEVER_TS)
            provided.setdefault(MVCC_END, LIVE_TS)
        for col in self.schema.columns:
            if col.name not in provided:
                raise SchemaError(f"missing value for column {col.name!r}")
            raw = col.dtype.encode(provided[col.name])
            off = self.schema.offset_of(col.name)
            if col.dtype.np_dtype is None:
                row[off : off + col.dtype.width] = np.frombuffer(raw, dtype=np.uint8)
            else:
                scalar = np.array([raw], dtype=col.dtype.np_dtype)
                row[off : off + col.dtype.width] = scalar.view(np.uint8)
        self.nrows += 1
        self.version += 1
        return idx

    def append_rows(self, rows: Iterable[Mapping[str, Any]]) -> List[int]:
        return [self.append_row(r) for r in rows]

    def append_arrays(self, columns: Mapping[str, np.ndarray]) -> None:
        """Bulk-append from whole column arrays (one per user column).

        Numeric arrays must already be in raw stored form (e.g. scaled
        ints for DECIMAL); CHAR columns take ``S<width>`` byte arrays.
        """
        names = set(columns)
        expected = set(c.name for c in self.schema.user_columns)
        if names != expected:
            raise SchemaError(
                f"bulk load columns {sorted(names)} != schema {sorted(expected)}"
            )
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise SchemaError(f"ragged bulk load: lengths {sorted(lengths)}")
        (n,) = lengths
        self._ensure_capacity(n)
        base = self.nrows
        for col in self.schema.user_columns:
            values = columns[col.name]
            off = self.schema.offset_of(col.name)
            w = col.dtype.width
            dest = self._frame[base : base + n, off : off + w]
            if col.dtype.np_dtype is None:
                arr = np.asarray(values, dtype=f"S{w}")
                dest[:] = arr.view(np.uint8).reshape(n, w)
            else:
                arr = np.asarray(values, dtype=col.dtype.np_dtype)
                dest[:] = arr.view(np.uint8).reshape(n, w)
        if self.schema.mvcc:
            self._stamp_bulk(base, n, MVCC_BEGIN, NEVER_TS)
            self._stamp_bulk(base, n, MVCC_END, LIVE_TS)
        self.nrows += n
        self.version += 1

    def _stamp_bulk(self, base: int, n: int, column: str, ts: int) -> None:
        off = self.schema.offset_of(column)
        stamped = np.full(n, ts, dtype="<i8")
        self._frame[base : base + n, off : off + 8] = stamped.view(np.uint8).reshape(n, 8)

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Raw stored values of one column over live rows (scaled ints for
        DECIMAL, day numbers for DATE, ``(n, w)`` uint8 for CHAR)."""
        return decode_frame_field(self.frame, self.schema.full_geometry(), name)

    def column_values(self, name: str) -> np.ndarray:
        """Query-facing values: DECIMAL rescaled to floats, CHAR as fixed
        byte strings (``S<width>``), DATE as day numbers."""
        col = self.schema.column(name)
        raw = self.column(name)
        if col.dtype.np_dtype is None:
            return raw.view(f"S{col.dtype.width}").reshape(-1)
        return col.dtype.decode_array(raw)

    def row(self, i: int) -> Dict[str, Any]:
        """One row decoded to Python values (user columns only)."""
        if not 0 <= i < self.nrows:
            raise IndexError(i)
        out = {}
        raw = self._frame[i]
        for col in self.schema.user_columns:
            off = self.schema.offset_of(col.name)
            chunk = raw[off : off + col.dtype.width]
            if col.dtype.np_dtype is None:
                out[col.name] = col.dtype.decode(bytes(chunk))
            else:
                value = np.ascontiguousarray(chunk).view(col.dtype.np_dtype)[0]
                out[col.name] = col.dtype.decode(value)
        return out

    def rows(self) -> Iterator[Dict[str, Any]]:
        for i in range(self.nrows):
            yield self.row(i)

    # ------------------------------------------------------------------
    # In-place mutation (MVCC bookkeeping and point updates).
    # ------------------------------------------------------------------
    def set_value(self, i: int, name: str, value: Any) -> None:
        if not 0 <= i < self.nrows:
            raise IndexError(i)
        col = self.schema.column(name)
        off = self.schema.offset_of(name)
        raw = col.dtype.encode(value)
        if col.dtype.np_dtype is None:
            self._frame[i, off : off + col.dtype.width] = np.frombuffer(
                raw, dtype=np.uint8
            )
        else:
            scalar = np.array([raw], dtype=col.dtype.np_dtype)
            self._frame[i, off : off + col.dtype.width] = scalar.view(np.uint8)
        self.version += 1

    def row_bytes(self, i: int) -> bytes:
        """The raw stored image of one row slot (all columns, stride wide).

        This is the redo payload the write-ahead log records: replaying it
        with :meth:`write_row_bytes` reproduces the slot exactly.
        """
        if not 0 <= i < self.nrows:
            raise IndexError(i)
        return bytes(self._frame[i])

    def write_row_bytes(self, i: int, data: bytes) -> None:
        """Overwrite (or append at) slot ``i`` with a raw row image.

        Idempotent by construction — writing the same bytes to the same
        slot twice leaves the table unchanged — which is exactly what WAL
        redo needs. Slots between ``nrows`` and ``i`` are padded invisible
        (MVCC tables stamp them NEVER/LIVE) so recovery can replay write
        intents at their original slot indices.
        """
        if len(data) != self.schema.row_stride:
            raise SchemaError(
                f"row image is {len(data)} bytes, stride is {self.schema.row_stride}"
            )
        if i < 0:
            raise IndexError(i)
        if i >= self.nrows:
            self.pad_to(i + 1)
        self._frame[i] = np.frombuffer(data, dtype=np.uint8)
        self.version += 1

    def pad_to(self, n: int) -> None:
        """Extend the table to ``n`` slots of invisible placeholder rows.

        MVCC tables stamp the padding ``(NEVER, LIVE)`` so no snapshot can
        ever see it; plain tables get zero rows. Used only by WAL recovery
        to keep replayed slot indices aligned with the runtime's.
        """
        if n <= self.nrows:
            return
        self._ensure_capacity(n - self.nrows)
        base, count = self.nrows, n - self.nrows
        self._frame[base:n] = 0
        if self.schema.mvcc:
            self._stamp_bulk(base, count, MVCC_BEGIN, NEVER_TS)
            self._stamp_bulk(base, count, MVCC_END, LIVE_TS)
        self.nrows = n
        self.version += 1

    @classmethod
    def restore(
        cls, schema: TableSchema, frame: bytes, nrows: int, version: int = 0
    ) -> "Table":
        """Rebuild a table from a checkpoint snapshot (schema + raw frame)."""
        if len(frame) != nrows * schema.row_stride:
            raise SchemaError(
                f"snapshot is {len(frame)} bytes, expected "
                f"{nrows} rows x {schema.row_stride}"
            )
        table = cls(schema, capacity=max(nrows, 1))
        if nrows:
            table._frame[:nrows] = np.frombuffer(frame, dtype=np.uint8).reshape(
                nrows, schema.row_stride
            )
        table.nrows = nrows
        table.version = version
        return table

    def retain(self, keep: np.ndarray) -> None:
        """Compact the table to the rows where ``keep`` is True (used by
        MVCC vacuum). Row slot indices change."""
        if keep.shape != (self.nrows,):
            raise SchemaError(
                f"retain mask shape {keep.shape} != ({self.nrows},)"
            )
        kept = self._frame[: self.nrows][keep]
        self._frame[: kept.shape[0]] = kept
        self._frame[kept.shape[0] : self.nrows] = 0
        self.nrows = kept.shape[0]
        self.version += 1

    # MVCC timestamp access -------------------------------------------------
    def _require_mvcc(self) -> None:
        if not self.schema.mvcc:
            raise SchemaError(f"table {self.schema.name!r} has no MVCC columns")

    @property
    def begin_ts(self) -> np.ndarray:
        self._require_mvcc()
        return self.column(MVCC_BEGIN)

    @property
    def end_ts(self) -> np.ndarray:
        self._require_mvcc()
        return self.column(MVCC_END)

    def stamp_begin(self, i: int, ts: int) -> None:
        self._require_mvcc()
        self.set_value(i, MVCC_BEGIN, ts)

    def stamp_end(self, i: int, ts: int) -> None:
        self._require_mvcc()
        self.set_value(i, MVCC_END, ts)

    def __len__(self) -> int:
        return self.nrows

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Table({self.schema.name!r}, rows={self.nrows}, "
            f"stride={self.schema.row_stride}, bytes={self.nbytes})"
        )
