"""Snapshot-isolation MVCC over the row-oriented base data (§III-C).

The paper's transaction design: the base data is append-only row storage;
every row carries ``begin_ts``/``end_ts``; updates append a new version
and close the old one; analytic reads pick the versions valid at their
snapshot — and with the fabric, that timestamp comparison happens in
hardware, off the CPU's critical path.

This module is the software half: a :class:`TransactionManager` issuing
logical timestamps, tracking write sets, and enforcing
first-committer-wins on write-write conflicts. Readers never block
writers and vice versa (single-threaded simulation, but the protocol is
the real one and the tests exercise its anomalies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.mvcc_filter import LIVE_TS, NEVER_TS, visible_mask
from repro.db.table import Table
from repro.errors import (
    TransactionError,
    TransactionStateError,
    WriteConflictError,
)
from repro.faults import RetryPolicy


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _WriteIntent:
    """One pending write: the fresh slot and the version it supersedes."""

    table: Table
    new_slot: Optional[int]  # None for pure deletes
    old_slot: Optional[int]  # None for pure inserts
    #: end_ts observed on the old version when the intent was created —
    #: used to detect that someone else committed in between.
    old_end_seen: int = LIVE_TS


class Transaction:
    """A snapshot-isolation transaction. Use via the manager:

    >>> txn = manager.begin()
    >>> txn.insert(table, {...})
    >>> manager.commit(txn)
    """

    def __init__(self, txn_id: int, start_ts: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.state = TxnState.ACTIVE
        self._manager = manager
        self._intents: List[_WriteIntent] = []
        self.commit_ts: Optional[int] = None

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    @property
    def snapshot_ts(self) -> int:
        """Pass this to any engine's ``execute(..., snapshot_ts=...)``."""
        return self.start_ts

    def visible_slots(self, table: Table) -> np.ndarray:
        """Row slots visible to this transaction's snapshot (plus its own
        uncommitted writes)."""
        self._require_active()
        mask = visible_mask(table.begin_ts, table.end_ts, self.start_ts)
        for intent in self._intents:
            if intent.table is table:
                if intent.new_slot is not None:
                    mask[intent.new_slot] = True
                if intent.old_slot is not None:
                    mask[intent.old_slot] = False
        return np.flatnonzero(mask)

    def read_row(self, table: Table, slot: int) -> Dict[str, Any]:
        self._require_active()
        return table.row(slot)

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def insert(self, table: Table, values: Mapping[str, Any]) -> int:
        """Append a new row, invisible until commit; returns its slot."""
        self._require_active()
        self._require_mvcc(table)
        slot = table.append_row(values)  # begin_ts defaults to NEVER
        self._intents.append(_WriteIntent(table=table, new_slot=slot, old_slot=None))
        return slot

    def update(self, table: Table, slot: int, changes: Mapping[str, Any]) -> int:
        """Create a new version of ``slot`` with ``changes`` applied;
        returns the new slot. A :class:`WriteConflictError` (a concurrent
        transaction already superseded this version) aborts the
        transaction before propagating."""
        self._require_active()
        self._require_mvcc(table)
        self._check_updatable_or_abort(table, slot)
        current = table.row(slot)
        current.update(changes)
        new_slot = table.append_row(current)
        self._intents.append(
            _WriteIntent(table=table, new_slot=new_slot, old_slot=slot)
        )
        return new_slot

    def delete(self, table: Table, slot: int) -> None:
        """Mark ``slot``'s version as ending at this txn's commit."""
        self._require_active()
        self._require_mvcc(table)
        self._check_updatable_or_abort(table, slot)
        self._intents.append(_WriteIntent(table=table, new_slot=None, old_slot=slot))

    def _check_updatable_or_abort(self, table: Table, slot: int) -> None:
        try:
            self._check_updatable(table, slot)
        except WriteConflictError:
            self._manager.stats.conflicts += 1
            self._manager.abort(self)
            raise

    def _check_updatable(self, table: Table, slot: int) -> None:
        begin = int(table.begin_ts[slot])
        end = int(table.end_ts[slot])
        own_slots = {
            i.new_slot for i in self._intents if i.table is table and i.new_slot is not None
        }
        if slot in own_slots:
            raise TransactionError(
                "updating a row inserted by the same transaction: update the "
                "pending version instead"
            )
        if begin == NEVER_TS:
            raise TransactionError(f"slot {slot} holds no committed version")
        if begin > self.start_ts:
            raise WriteConflictError(
                f"slot {slot} was created after this snapshot (ts {begin} > "
                f"{self.start_ts})"
            )
        if end != LIVE_TS:
            raise WriteConflictError(
                f"slot {slot} was already superseded at ts {end} "
                "(first committer wins)"
            )
        for intent in self._intents:
            if intent.table is table and intent.old_slot == slot:
                raise TransactionError(f"slot {slot} already written in this txn")

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(f"transaction is {self.state.value}")

    @staticmethod
    def _require_mvcc(table: Table) -> None:
        if not table.schema.mvcc:
            raise TransactionError(
                f"table {table.schema.name!r} has no MVCC timestamp columns"
            )


@dataclass
class MvccStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    versions_created: int = 0
    versions_vacuumed: int = 0
    #: Conflict-aborted attempts replayed by :func:`run_transaction`.
    retries: int = 0
    #: Simulated cycles spent backing off between those replays.
    backoff_cycles: float = 0.0


class TransactionManager:
    """Issues timestamps and enforces first-committer-wins at commit."""

    def __init__(self):
        self._clock = 0
        self._active: Dict[int, Transaction] = {}
        self._next_txn_id = 1
        self.stats = MvccStats()

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def now(self) -> int:
        """The latest issued timestamp — a fresh read-only snapshot."""
        return self._clock

    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn_id, self._tick(), self)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self.stats.begun += 1
        return txn

    def commit(self, txn: Transaction) -> int:
        """Validate and commit; returns the commit timestamp."""
        txn._require_active()
        # First-committer-wins validation: every superseded version must
        # still be live (no one committed an ending in between).
        for intent in txn._intents:
            if intent.old_slot is not None:
                end = int(intent.table.end_ts[intent.old_slot])
                if end != LIVE_TS:
                    self.stats.conflicts += 1
                    self.abort(txn)
                    raise WriteConflictError(
                        f"slot {intent.old_slot} superseded at ts {end} by a "
                        "concurrent commit"
                    )
        commit_ts = self._tick()
        for intent in txn._intents:
            if intent.new_slot is not None:
                intent.table.stamp_begin(intent.new_slot, commit_ts)
                self.stats.versions_created += 1
            if intent.old_slot is not None:
                intent.table.stamp_end(intent.old_slot, commit_ts)
        txn.state = TxnState.COMMITTED
        txn.commit_ts = commit_ts
        self._active.pop(txn.txn_id, None)
        self.stats.committed += 1
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        """Roll back: pending rows stay stamped NEVER (invisible garbage
        reclaimed by :meth:`vacuum`)."""
        if txn.state is TxnState.ABORTED:
            return
        txn._require_active()
        txn.state = TxnState.ABORTED
        self._active.pop(txn.txn_id, None)
        self.stats.aborted += 1

    # ------------------------------------------------------------------
    # Garbage collection.
    # ------------------------------------------------------------------
    def oldest_active_snapshot(self) -> int:
        if not self._active:
            return self._clock
        return min(t.start_ts for t in self._active.values())

    def vacuum(self, table: Table) -> int:
        """Drop versions no snapshot can see; returns rows removed.

        A version is reclaimable when it ended at or before the oldest
        active snapshot, or was never committed (aborted leftovers).
        Compaction moves row slots, so it requires a quiescent system —
        no active transactions (whose write intents hold slot indices).
        """
        if not table.schema.mvcc:
            return 0
        if self._active:
            raise TransactionError(
                "vacuum requires no active transactions (slot indices move)"
            )
        horizon = self.oldest_active_snapshot()
        begin = table.begin_ts
        end = table.end_ts
        keep = (begin != NEVER_TS) & (end > horizon)
        removed = int(table.nrows - np.count_nonzero(keep))
        if removed:
            table.retain(keep)
            self.stats.versions_vacuumed += removed
        return removed


def run_transaction(
    manager: TransactionManager,
    fn: Callable[[Transaction], Any],
    retries: int = 5,
    policy: Optional[RetryPolicy] = None,
) -> Any:
    """Run ``fn(txn)`` under a fresh transaction, retrying conflicts.

    First-committer-wins makes :class:`~repro.errors.WriteConflictError`
    a *transient* failure: the canonical response is abort, back off, and
    replay against a fresh snapshot. This helper does exactly that, up to
    ``retries`` replays with the bounded exponential backoff of
    ``policy`` (cycles are accounted in ``manager.stats.backoff_cycles``
    — the simulation has no wall clock to sleep on). ``fn`` must be safe
    to re-run from scratch; it may commit the transaction itself, or
    leave it active for this helper to commit. The last conflict
    propagates when the budget is exhausted.
    """
    policy = policy or RetryPolicy(retries=retries, base=1_000.0, cap=64_000.0)
    for attempt in range(retries + 1):
        txn = manager.begin()
        try:
            out = fn(txn)
            if txn.state is TxnState.ACTIVE:
                manager.commit(txn)
            return out
        except WriteConflictError:
            if txn.state is TxnState.ACTIVE:
                manager.abort(txn)
            if attempt == retries:
                raise
            manager.stats.retries += 1
            manager.stats.backoff_cycles += policy.backoff(attempt)
    raise AssertionError("unreachable")  # pragma: no cover
