"""Snapshot-isolation MVCC over the row-oriented base data (§III-C).

The paper's transaction design: the base data is append-only row storage;
every row carries ``begin_ts``/``end_ts``; updates append a new version
and close the old one; analytic reads pick the versions valid at their
snapshot — and with the fabric, that timestamp comparison happens in
hardware, off the CPU's critical path.

This module is the software half: a :class:`TransactionManager` issuing
logical timestamps, tracking write sets, and enforcing
first-committer-wins on write-write conflicts. Readers never block
writers and vice versa (single-threaded simulation, but the protocol is
the real one and the tests exercise its anomalies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.mvcc_filter import LIVE_TS, NEVER_TS, visible_mask_batched
from repro.db.table import Table
from repro.db.wal import Checkpointer, WalRecord, WalRecordType, WriteAheadLog
from repro.errors import (
    TransactionError,
    TransactionStateError,
    WriteConflictError,
)
from repro.faults import RetryPolicy
from repro.obs import MetricsRegistry, Tracer, active_metrics, maybe_span


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _WriteIntent:
    """One pending write: the fresh slot and the version it supersedes."""

    table: Table
    new_slot: Optional[int]  # None for pure deletes
    old_slot: Optional[int]  # None for pure inserts
    #: end_ts observed on the old version when the intent was created —
    #: used to detect that someone else committed in between.
    old_end_seen: int = LIVE_TS


class Transaction:
    """A snapshot-isolation transaction. Use via the manager:

    >>> txn = manager.begin()
    >>> txn.insert(table, {...})
    >>> manager.commit(txn)
    """

    def __init__(self, txn_id: int, start_ts: int, manager: "TransactionManager"):
        self.txn_id = txn_id
        self.start_ts = start_ts
        self.state = TxnState.ACTIVE
        self._manager = manager
        self._intents: List[_WriteIntent] = []
        self.commit_ts: Optional[int] = None
        #: True once this txn has emitted any WAL record (BEGIN is lazy:
        #: read-only transactions cost zero log traffic).
        self._wal_logged = False

    # ------------------------------------------------------------------
    # Reads.
    # ------------------------------------------------------------------
    @property
    def snapshot_ts(self) -> int:
        """Pass this to any engine's ``execute(..., snapshot_ts=...)``."""
        return self.start_ts

    def visibility(self, table: Table) -> np.ndarray:
        """Boolean visibility mask over ``table``'s row slots for this
        transaction's snapshot, with its own uncommitted writes patched
        in (pending inserts visible, superseded versions hidden)."""
        self._require_active()
        mask = visible_mask_batched(table.begin_ts, table.end_ts, self.start_ts)
        for intent in self._intents:
            if intent.table is table:
                if intent.new_slot is not None:
                    mask[intent.new_slot] = True
                if intent.old_slot is not None:
                    mask[intent.old_slot] = False
        return mask

    def visible_slots(self, table: Table) -> np.ndarray:
        """Row slots visible to this transaction's snapshot (plus its own
        uncommitted writes)."""
        return np.flatnonzero(self.visibility(table))

    def read_row(self, table: Table, slot: int) -> Dict[str, Any]:
        self._require_active()
        return table.row(slot)

    def read_columns(
        self, table: Table, names: Optional[Tuple[str, ...]] = None
    ) -> Dict[str, np.ndarray]:
        """Batch snapshot read: the named user columns restricted to this
        transaction's visible rows, one vectorized gather per column.

        This is the array-native replacement for ``visible_slots`` +
        per-slot :meth:`read_row` loops: one visibility mask, then each
        referenced column decoded and filtered in a single operation.
        Values come back query-facing (floats for DECIMAL, ``S<w>`` bytes
        for CHAR, day numbers for DATE), matching what the engines see.
        """
        self._require_active()
        mask = self.visibility(table)
        if names is None:
            names = tuple(c.name for c in table.schema.user_columns)
        return {name: table.column_values(name)[mask] for name in names}

    # ------------------------------------------------------------------
    # Writes.
    # ------------------------------------------------------------------
    def insert(self, table: Table, values: Mapping[str, Any]) -> int:
        """Append a new row, invisible until commit; returns its slot."""
        self._require_active()
        self._require_mvcc(table)
        slot = table.append_row(values)  # begin_ts defaults to NEVER
        intent = _WriteIntent(table=table, new_slot=slot, old_slot=None)
        self._intents.append(intent)
        self._manager._log_write(self, intent)
        return slot

    def update(self, table: Table, slot: int, changes: Mapping[str, Any]) -> int:
        """Create a new version of ``slot`` with ``changes`` applied;
        returns the new slot. A :class:`WriteConflictError` (a concurrent
        transaction already superseded this version) aborts the
        transaction before propagating."""
        self._require_active()
        self._require_mvcc(table)
        self._check_updatable_or_abort(table, slot)
        current = table.row(slot)
        current.update(changes)
        new_slot = table.append_row(current)
        intent = _WriteIntent(table=table, new_slot=new_slot, old_slot=slot)
        self._intents.append(intent)
        self._manager._log_write(self, intent)
        return new_slot

    def delete(self, table: Table, slot: int) -> None:
        """Mark ``slot``'s version as ending at this txn's commit."""
        self._require_active()
        self._require_mvcc(table)
        self._check_updatable_or_abort(table, slot)
        intent = _WriteIntent(table=table, new_slot=None, old_slot=slot)
        self._intents.append(intent)
        self._manager._log_write(self, intent)

    def _check_updatable_or_abort(self, table: Table, slot: int) -> None:
        try:
            self._check_updatable(table, slot)
        except WriteConflictError:
            self._manager.stats.conflicts += 1
            self._manager.abort(self)
            raise

    def _check_updatable(self, table: Table, slot: int) -> None:
        begin = int(table.begin_ts[slot])
        end = int(table.end_ts[slot])
        own_slots = {
            i.new_slot for i in self._intents if i.table is table and i.new_slot is not None
        }
        if slot in own_slots:
            raise TransactionError(
                "updating a row inserted by the same transaction: update the "
                "pending version instead"
            )
        if begin == NEVER_TS:
            raise TransactionError(f"slot {slot} holds no committed version")
        if begin > self.start_ts:
            raise WriteConflictError(
                f"slot {slot} was created after this snapshot (ts {begin} > "
                f"{self.start_ts})"
            )
        if end != LIVE_TS:
            raise WriteConflictError(
                f"slot {slot} was already superseded at ts {end} "
                "(first committer wins)"
            )
        for intent in self._intents:
            if intent.table is table and intent.old_slot == slot:
                raise TransactionError(f"slot {slot} already written in this txn")

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(f"transaction is {self.state.value}")

    @staticmethod
    def _require_mvcc(table: Table) -> None:
        if not table.schema.mvcc:
            raise TransactionError(
                f"table {table.schema.name!r} has no MVCC timestamp columns"
            )


@dataclass
class MvccStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    conflicts: int = 0
    versions_created: int = 0
    versions_vacuumed: int = 0
    #: Conflict-aborted attempts replayed by :func:`run_transaction`.
    retries: int = 0
    #: Simulated cycles spent backing off between those replays.
    backoff_cycles: float = 0.0


class TransactionManager:
    """Issues timestamps and enforces first-committer-wins at commit.

    Pass ``wal=WriteAheadLog(...)`` to make transactions durable: every
    write intent and commit is logged through the simulated storage
    device, and :func:`repro.db.wal.recover` rebuilds this manager's
    exact committed state after a crash. The default (``wal=None``) is
    the original purely in-memory behaviour — zero logging cost.
    """

    def __init__(
        self,
        wal: Optional[WriteAheadLog] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self._clock = 0
        self._active: Dict[int, Transaction] = {}
        self._next_txn_id = 1
        self.stats = MvccStats()
        #: Optional durability pipe; ``None`` means in-memory only.
        self.wal = wal
        #: Observability hook: commit/abort/vacuum open spans here, with
        #: the WAL's append/flush spans nesting inside them. A WAL that
        #: has no tracer of its own adopts this one, so one wiring point
        #: covers the whole durability path.
        self.tracer = tracer
        if tracer is not None and wal is not None and wal.tracer is None:
            wal.tracer = tracer
            if wal.ledger.tracer is None:
                wal.ledger.tracer = tracer
        #: Metrics hook: the manager exposes its MVCC statistics through
        #: a collector and feeds a per-commit write-set-size histogram.
        #: A WAL without metrics of its own adopts this registry too —
        #: one wiring point covers the whole durability path.
        self.metrics = active_metrics(metrics)
        self._m_intents = None
        if self.metrics is not None:
            from repro.obs.collectors import register_mvcc

            register_mvcc(self.metrics, self)
            self._m_intents = self.metrics.histogram(
                "mvcc_txn_intents",
                help="Write intents per committed transaction",
            )
            if wal is not None:
                wal.attach_metrics(self.metrics)

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def now(self) -> int:
        """The latest issued timestamp — a fresh read-only snapshot."""
        return self._clock

    @property
    def active_count(self) -> int:
        """Transactions currently in flight."""
        return len(self._active)

    @property
    def next_txn_id(self) -> int:
        """The id the next :meth:`begin` will issue (checkpoint state)."""
        return self._next_txn_id

    def restore_state(self, clock: int, next_txn_id: int) -> None:
        """Reset the timestamp/id generators after crash recovery.

        Only valid on a quiescent manager — recovery constructs a fresh
        one, so there is never anything in flight to invalidate.
        """
        if self._active:
            raise TransactionError("cannot restore state with active transactions")
        self._clock = clock
        self._next_txn_id = next_txn_id

    # ------------------------------------------------------------------
    # WAL emission (no-ops when ``wal`` is None).
    # ------------------------------------------------------------------
    def _log_begin(self, txn: Transaction) -> None:
        """Lazily emit BEGIN at the first write — read-only txns log nothing."""
        if txn._wal_logged:
            return
        txn._wal_logged = True
        self.wal.append(
            WalRecord(WalRecordType.BEGIN, txn.txn_id, start_ts=txn.start_ts)
        )

    def _log_write(self, txn: Transaction, intent: _WriteIntent) -> None:
        if self.wal is None:
            return
        self._log_begin(txn)
        row = (
            b""
            if intent.new_slot is None
            else intent.table.row_bytes(intent.new_slot)
        )
        self.wal.append(
            WalRecord(
                WalRecordType.WRITE,
                txn.txn_id,
                table=intent.table.schema.name,
                new_slot=intent.new_slot,
                old_slot=intent.old_slot,
                row_bytes=row,
            )
        )

    def begin(self) -> Transaction:
        txn = Transaction(self._next_txn_id, self._tick(), self)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self.stats.begun += 1
        return txn

    def commit(self, txn: Transaction) -> int:
        """Validate and commit; returns the commit timestamp."""
        txn._require_active()
        with maybe_span(
            self.tracer,
            "txn.commit",
            layer="txn",
            txn_id=txn.txn_id,
            intents=len(txn._intents),
        ) as span:
            # First-committer-wins validation: every superseded version must
            # still be live (no one committed an ending in between).
            for intent in txn._intents:
                if intent.old_slot is not None:
                    end = int(intent.table.end_ts[intent.old_slot])
                    if end != LIVE_TS:
                        self.stats.conflicts += 1
                        span.set_attrs(conflict=True)
                        self.abort(txn)
                        raise WriteConflictError(
                            f"slot {intent.old_slot} superseded at ts {end} by a "
                            "concurrent commit"
                        )
            commit_ts = self._tick()
            if self.wal is not None and txn._wal_logged:
                # Write-ahead: the COMMIT record must be durable before any
                # effect of this transaction is acknowledged. The flush here
                # is the commit barrier (priced NAND program time).
                self.wal.append(
                    WalRecord(
                        WalRecordType.COMMIT, txn.txn_id, commit_ts=commit_ts
                    ),
                    durable=True,
                )
            for intent in txn._intents:
                if intent.new_slot is not None:
                    intent.table.stamp_begin(intent.new_slot, commit_ts)
                    self.stats.versions_created += 1
                if intent.old_slot is not None:
                    intent.table.stamp_end(intent.old_slot, commit_ts)
            txn.state = TxnState.COMMITTED
            txn.commit_ts = commit_ts
            self._active.pop(txn.txn_id, None)
            self.stats.committed += 1
            if self._m_intents is not None:
                self._m_intents.observe(len(txn._intents))
            span.set_attrs(commit_ts=commit_ts)
        return commit_ts

    def abort(self, txn: Transaction) -> None:
        """Roll back: pending rows stay stamped NEVER (invisible garbage
        reclaimed by :meth:`vacuum`)."""
        if txn.state is TxnState.ABORTED:
            return
        txn._require_active()
        with maybe_span(
            self.tracer, "txn.abort", layer="txn", txn_id=txn.txn_id
        ):
            if self.wal is not None and txn._wal_logged:
                # Advisory only — a missing ABORT recovers identically (no
                # COMMIT means no redo), so no flush is needed.
                self.wal.append(WalRecord(WalRecordType.ABORT, txn.txn_id))
            txn.state = TxnState.ABORTED
            self._active.pop(txn.txn_id, None)
            self.stats.aborted += 1

    # ------------------------------------------------------------------
    # Garbage collection.
    # ------------------------------------------------------------------
    def oldest_active_snapshot(self) -> int:
        if not self._active:
            return self._clock
        return min(t.start_ts for t in self._active.values())

    def vacuum(
        self,
        table: Table,
        checkpointer: Optional[Checkpointer] = None,
        tables: Optional[List[Table]] = None,
    ) -> int:
        """Drop versions no snapshot can see; returns rows removed.

        A version is reclaimable when it ended at or before the oldest
        active snapshot, or was never committed (aborted leftovers).
        Compaction moves row slots, so it requires a quiescent system —
        no active transactions (whose write intents hold slot indices).

        With a WAL attached, compaction also invalidates every slot index
        in the existing log: redoing pre-vacuum WRITE records against the
        compacted layout (or mixing them with post-vacuum appends) would
        silently lose committed rows. A ``checkpointer`` on this manager's
        WAL is therefore *required*; after ``retain`` moves the slots, the
        compacted image is snapshotted and the stale log truncated, so
        recovery never sees two slot spaces in one log. ``tables`` lists
        every WAL-logged table to include in that snapshot (defaults to
        just ``table``; the vacuumed table is always included). The fresh
        :class:`~repro.db.wal.Checkpoint` is available as
        ``checkpointer.last``.
        """
        if not table.schema.mvcc:
            return 0
        if self._active:
            raise TransactionError(
                "vacuum requires no active transactions (slot indices move)"
            )
        if self.wal is not None:
            if checkpointer is None:
                raise TransactionError(
                    "vacuum compacts slot indices that WAL records reference: "
                    "pass checkpointer= (and tables= for every logged table) "
                    "so the compacted image is snapshotted and the stale log "
                    "truncated, or detach the WAL first"
                )
            if checkpointer.wal is not self.wal:
                raise TransactionError(
                    "checkpointer is attached to a different WAL than this "
                    "manager logs to"
                )
        with maybe_span(
            self.tracer,
            "txn.vacuum",
            layer="txn",
            table=table.schema.name,
            rows_in=table.nrows,
        ) as span:
            horizon = self.oldest_active_snapshot()
            begin = table.begin_ts
            end = table.end_ts
            keep = (begin != NEVER_TS) & (end > horizon)
            removed = int(table.nrows - np.count_nonzero(keep))
            if removed:
                table.retain(keep)
                self.stats.versions_vacuumed += removed
                if self.wal is not None:
                    snap_tables = list(tables) if tables is not None else [table]
                    if all(t is not table for t in snap_tables):
                        snap_tables.append(table)
                    checkpointer.checkpoint(self, snap_tables)
            span.set_attrs(rows_out=table.nrows, removed=removed)
        return removed


def run_transaction(
    manager: TransactionManager,
    fn: Callable[[Transaction], Any],
    retries: int = 5,
    policy: Optional[RetryPolicy] = None,
) -> Any:
    """Run ``fn(txn)`` under a fresh transaction, retrying conflicts.

    First-committer-wins makes :class:`~repro.errors.WriteConflictError`
    a *transient* failure: the canonical response is abort, back off, and
    replay against a fresh snapshot. This helper does exactly that with
    the bounded exponential backoff of ``policy`` (cycles are accounted
    in ``manager.stats.backoff_cycles`` — the simulation has no wall
    clock to sleep on). ``fn`` must be safe to re-run from scratch; it
    may commit the transaction itself, or leave it active for this helper
    to commit. The last conflict propagates when the budget is exhausted.

    The replay budget: when ``policy`` is given, **its** ``retries``
    wins and the ``retries`` argument is ignored (one object owns the
    whole retry shape — budget, backoff, jitter); the bare ``retries``
    argument only parameterizes the default policy.

    Every exception path aborts the transaction: a non-conflict error
    from ``fn`` propagates, but never leaks an active transaction that
    would pin ``oldest_active_snapshot()`` and block ``vacuum`` forever.
    """
    policy = policy or RetryPolicy(retries=retries, base=1_000.0, cap=64_000.0)
    budget = policy.retries
    for attempt in range(budget + 1):
        txn = manager.begin()
        with maybe_span(
            manager.tracer,
            "txn.attempt",
            layer="txn",
            txn_id=txn.txn_id,
            attempt=attempt,
        ) as span:
            try:
                out = fn(txn)
                if txn.state is TxnState.ACTIVE:
                    manager.commit(txn)
                return out
            except WriteConflictError:
                if txn.state is TxnState.ACTIVE:
                    manager.abort(txn)
                span.set_attrs(conflict=True)
                if attempt == budget:
                    raise
                manager.stats.retries += 1
                manager.stats.backoff_cycles += policy.backoff(attempt)
            except BaseException:
                if txn.state is TxnState.ACTIVE:
                    manager.abort(txn)
                raise
    raise AssertionError("unreachable")  # pragma: no cover
