"""Table statistics: the optimizer's data-dependent selectivity source.

``ANALYZE``-style collection over the row image: per-column minimum,
maximum and number of distinct values, plus row count. The cost model
(§III-B "revise existing cost models considering Relational Fabric")
uses these for equality (1/NDV) and range (uniform-interpolation)
selectivities, falling back to the System-R constants when a column was
never analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.db.expr import (
    And,
    Between,
    ColumnRef,
    Compare,
    Expr,
    Literal,
    Not,
    Or,
)
from repro.db.table import Table


@dataclass(frozen=True)
class ColumnStats:
    """Summary of one column's value distribution."""

    name: str
    ndv: int
    min_value: Optional[float]
    max_value: Optional[float]

    @property
    def span(self) -> float:
        if self.min_value is None or self.max_value is None:
            return 0.0
        return float(self.max_value - self.min_value)


@dataclass
class TableStats:
    """Row count plus per-column statistics."""

    nrows: int
    columns: Dict[str, ColumnStats]

    @classmethod
    def collect(cls, table: Table) -> "TableStats":
        """One ANALYZE pass over every user column."""
        columns: Dict[str, ColumnStats] = {}
        for col in table.schema.user_columns:
            values = table.column_values(col.name)
            if table.nrows == 0:
                columns[col.name] = ColumnStats(col.name, 0, None, None)
                continue
            ndv = int(len(np.unique(values)))
            if col.dtype.np_dtype is None:
                columns[col.name] = ColumnStats(col.name, ndv, None, None)
            else:
                columns[col.name] = ColumnStats(
                    col.name, ndv, float(values.min()), float(values.max())
                )
        return cls(nrows=table.nrows, columns=columns)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


def _clamp(x: float) -> float:
    return min(1.0, max(0.0, x))


def _range_fraction(stats: ColumnStats, op: str, constant: float) -> Optional[float]:
    """Uniform-distribution estimate of ``column <op> constant``."""
    if stats.min_value is None or stats.span <= 0:
        return None
    frac_below = _clamp((constant - stats.min_value) / stats.span)
    if op in ("<", "<="):
        return frac_below
    if op in (">", ">="):
        return 1.0 - frac_below
    return None


def selectivity_with_stats(expr: Optional[Expr], stats: TableStats) -> float:
    """Statistics-backed selectivity; falls back to the rule constants
    (imported lazily to avoid a cycle) for anything not estimable."""
    from repro.db.plan.cost import (
        SELECTIVITY_BETWEEN,
        SELECTIVITY_EQ,
        SELECTIVITY_OTHER,
        SELECTIVITY_RANGE,
        estimate_selectivity,
    )

    if expr is None:
        return 1.0
    if isinstance(expr, And):
        out = 1.0
        for t in expr.terms:
            out *= selectivity_with_stats(t, stats)
        return out
    if isinstance(expr, Or):
        out = 1.0
        for t in expr.terms:
            out *= 1.0 - selectivity_with_stats(t, stats)
        return 1.0 - out
    if isinstance(expr, Not):
        return 1.0 - selectivity_with_stats(expr.term, stats)
    if isinstance(expr, Compare):
        col, const, flipped = _column_vs_constant(expr)
        if col is not None:
            op = _FLIP[expr.op] if flipped else expr.op
            cstats = stats.column(col)
            if cstats is not None:
                if op == "=":
                    return 1.0 / cstats.ndv if cstats.ndv else SELECTIVITY_EQ
                if op == "<>":
                    return 1.0 - (1.0 / cstats.ndv if cstats.ndv else SELECTIVITY_EQ)
                frac = _range_fraction(cstats, op, const)
                if frac is not None:
                    return frac
        return estimate_selectivity(expr)
    if isinstance(expr, Between):
        if isinstance(expr.term, ColumnRef) and isinstance(expr.low, Literal) and isinstance(expr.high, Literal):
            cstats = stats.column(expr.term.name)
            if cstats is not None and cstats.span > 0:
                lo = _clamp((float(expr.low.value) - cstats.min_value) / cstats.span)
                hi = _clamp((float(expr.high.value) - cstats.min_value) / cstats.span)
                return max(0.0, hi - lo)
        return SELECTIVITY_BETWEEN
    return estimate_selectivity(expr)


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _column_vs_constant(cmp: Compare):
    """Returns (column, constant, flipped): flipped means the constant was
    on the left, so the operator must be mirrored (``c < col`` ==
    ``col > c``)."""
    if isinstance(cmp.left, ColumnRef) and isinstance(cmp.right, Literal):
        if isinstance(cmp.right.value, (int, float)):
            return cmp.left.name, float(cmp.right.value), False
    if isinstance(cmp.right, ColumnRef) and isinstance(cmp.left, Literal):
        if isinstance(cmp.left.value, (int, float)):
            return cmp.right.name, float(cmp.left.value), True
    return None, None, False
