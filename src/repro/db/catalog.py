"""A minimal catalog: named tables plus their secondary structures.

The storage manager of a fabric-based system is deliberately thin (paper
Section III-A: "it only needs to maintain a single copy of each
relation's data") — the catalog reflects that: one :class:`Table` per
relation, with optional indexes registered beside it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.errors import SchemaError


class Catalog:
    """Name → table registry with index bookkeeping."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._indexes: Dict[str, Dict[str, object]] = {}
        self._stats: Dict[str, object] = {}

    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        self._indexes[schema.name] = {}
        return table

    def register(self, table: Table) -> Table:
        """Adopt an already-built table (bulk-loaded by a generator)."""
        if table.schema.name in self._tables:
            raise SchemaError(f"table {table.schema.name!r} already exists")
        self._tables[table.schema.name] = table
        self._indexes[table.schema.name] = {}
        return table

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(f"no table named {name!r}")
        return self._tables[name]

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no table named {name!r}")
        del self._tables[name]
        del self._indexes[name]
        self._stats.pop(name, None)

    def add_index(self, table_name: str, column: str, index: object) -> None:
        self.table(table_name)  # existence check
        self._indexes[table_name][column] = index

    def index_on(self, table_name: str, column: str) -> Optional[object]:
        return self._indexes.get(table_name, {}).get(column)

    def analyze(self, table_name: str):
        """Collect and cache statistics for one table (ANALYZE)."""
        from repro.db.stats import TableStats

        stats = TableStats.collect(self.table(table_name))
        self._stats[table_name] = stats
        return stats

    def stats_of(self, table_name: str):
        """Cached statistics, or None if the table was never analyzed or
        has changed since (statistics go stale with the data)."""
        stats = self._stats.get(table_name)
        if stats is None:
            return None
        if stats.nrows != self.table(table_name).nrows:
            return None
        return stats

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables
