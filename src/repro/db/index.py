"""A B+-tree index over row slots.

Paper Section III-A assigns indexes a narrower role under the fabric:
"indexes will mostly be useful for workloads with point queries and
updates, since range queries can be very efficiently evaluated with
column-group accesses." This module provides that point-access structure
so the optimizer (and the physical-design benches) can weigh an index
probe against an ephemeral range scan.

Keys are any totally ordered Python values; payloads are row slots. The
tree supports duplicates unless built with ``unique=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import IndexError_


class _Node:
    __slots__ = ("keys", "leaf")

    def __init__(self, leaf: bool):
        self.keys: List[Any] = []
        self.leaf = leaf


class _Leaf(_Node):
    __slots__ = ("values", "next")

    def __init__(self):
        super().__init__(leaf=True)
        self.values: List[List[int]] = []  # one slot-list per key
        self.next: Optional["_Leaf"] = None


class _Inner(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__(leaf=False)
        self.children: List[_Node] = []


def _find(keys: List[Any], key: Any) -> int:
    """Leftmost insertion point of ``key`` (bisect_left, inlined so the
    module has no dependencies)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """Order-``fanout`` B+-tree mapping keys to lists of row slots."""

    def __init__(self, fanout: int = 32, unique: bool = False):
        if fanout < 4:
            raise IndexError_("fanout must be at least 4")
        self.fanout = fanout
        self.unique = unique
        self._root: _Node = _Leaf()
        self._size = 0
        self.height = 1

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert.
    # ------------------------------------------------------------------
    def insert(self, key: Any, slot: int) -> None:
        split = self._insert(self._root, key, slot)
        if split is not None:
            sep, right = split
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self.height += 1

    def _insert(self, node: _Node, key: Any, slot: int):
        if node.leaf:
            return self._insert_leaf(node, key, slot)
        idx = _find(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            idx += 1
        split = self._insert(node.children[idx], key, slot)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) < self.fanout:
            return None
        mid = len(node.keys) // 2
        sep_up = node.keys[mid]
        sibling = _Inner()
        sibling.keys = node.keys[mid + 1 :]
        sibling.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep_up, sibling

    def _insert_leaf(self, leaf: _Leaf, key: Any, slot: int):
        idx = _find(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if self.unique:
                raise IndexError_(f"duplicate key {key!r} under unique constraint")
            leaf.values[idx].append(slot)
            self._size += 1
            return None
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, [slot])
        self._size += 1
        if len(leaf.keys) < self.fanout:
            return None
        mid = len(leaf.keys) // 2
        sibling = _Leaf()
        sibling.keys = leaf.keys[mid:]
        sibling.values = leaf.values[mid:]
        sibling.next = leaf.next
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next = sibling
        return sibling.keys[0], sibling

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def _leaf_for(self, key: Any) -> _Leaf:
        node = self._root
        while not node.leaf:
            idx = _find(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                idx += 1
            node = node.children[idx]
        return node  # type: ignore[return-value]

    def search(self, key: Any) -> List[int]:
        """Slots holding ``key`` (empty list when absent)."""
        leaf = self._leaf_for(key)
        idx = _find(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range(self, low: Any, high: Any, inclusive: bool = True) -> Iterator[Tuple[Any, int]]:
        """Yield ``(key, slot)`` for keys in [low, high] (or [low, high))."""
        leaf = self._leaf_for(low)
        idx = _find(leaf.keys, low)
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key > high or (key == high and not inclusive):
                    return
                for slot in leaf.values[idx]:
                    yield key, slot
                idx += 1
            leaf = leaf.next
            idx = 0

    def items(self) -> Iterator[Tuple[Any, int]]:
        """All entries in key order."""
        node = self._root
        while not node.leaf:
            node = node.children[0]
        leaf: Optional[_Leaf] = node  # type: ignore[assignment]
        while leaf is not None:
            for key, slots in zip(leaf.keys, leaf.values):
                for slot in slots:
                    yield key, slot
            leaf = leaf.next

    # ------------------------------------------------------------------
    # Delete.
    # ------------------------------------------------------------------
    def delete(self, key: Any, slot: Optional[int] = None) -> int:
        """Remove ``slot`` under ``key`` (or every slot if None); returns
        how many entries were removed. Leaves may underflow — this tree
        favours simplicity over perfect occupancy, which is fine for the
        simulation workloads (bulk build, few deletes)."""
        leaf = self._leaf_for(key)
        idx = _find(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return 0
        if slot is None:
            removed = len(leaf.values[idx])
            del leaf.keys[idx]
            del leaf.values[idx]
        else:
            try:
                leaf.values[idx].remove(slot)
            except ValueError:
                return 0
            removed = 1
            if not leaf.values[idx]:
                del leaf.keys[idx]
                del leaf.values[idx]
        self._size -= removed
        return removed


def build_index(table, column: str, fanout: int = 32, unique: bool = False) -> BPlusTree:
    """Bulk-build a B+-tree over ``table.column_values(column)``."""
    tree = BPlusTree(fanout=fanout, unique=unique)
    values = table.column_values(column)
    for slot, key in enumerate(values.tolist()):
        tree.insert(key, slot)
    return tree
