"""Query planning: binding, logical plans, cost estimation, optimizer."""

from repro.db.plan.binder import BoundJoin, BoundOutput, BoundQuery, bind
from repro.db.plan.codecache import CodeFragmentCache, fragment_signature
from repro.db.plan.logical import LogicalNode, build_plan, explain

__all__ = [
    "BoundJoin",
    "BoundOutput",
    "BoundQuery",
    "CodeFragmentCache",
    "LogicalNode",
    "bind",
    "build_plan",
    "explain",
    "fragment_signature",
]
