"""Access-path selection: "construct the fastest solution" (§III-B).

The paper's point: with the fabric available, the optimizer no longer
searches a combinatorial space of materialized layouts — every column
group is reachable, so it *constructs* the cheapest access path directly
from the query's referenced columns. This optimizer compares the row
scan, the column scan, the ephemeral scan, and (for point queries) an
index probe, and returns the ranked decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.db.catalog import Catalog
from repro.db.plan.binder import BoundQuery, bind
from repro.db.plan.cost import CostEstimate, CostModel
from repro.db.plan.logical import explain
from repro.db.sql.parser import parse
from repro.hw.config import PlatformConfig


@dataclass
class AccessDecision:
    """The optimizer's ranked choice of access path for one query."""

    winner: str
    estimates: Dict[str, CostEstimate]
    plan: str

    def ranked(self) -> List[Tuple[str, float]]:
        return sorted(
            ((name, est.cycles) for name, est in self.estimates.items()),
            key=lambda kv: kv[1],
        )

    @property
    def speedup_vs_worst(self) -> float:
        ranked = self.ranked()
        return ranked[-1][1] / ranked[0][1] if ranked[0][1] else float("inf")


class Optimizer:
    """Chooses the cheapest access path for each query."""

    def __init__(
        self,
        catalog: Catalog,
        platform: Optional[PlatformConfig] = None,
        fabric_available: bool = True,
    ):
        self.catalog = catalog
        self.cost_model = CostModel(platform)
        self.fabric_available = fabric_available

    def choose(self, query) -> AccessDecision:
        """``query`` is SQL text or a :class:`BoundQuery`."""
        bound = (
            bind(parse(query), self.catalog) if isinstance(query, str) else query
        )
        stats = self.catalog.stats_of(bound.table.schema.name)
        estimates: Dict[str, CostEstimate] = {
            "scan": self.cost_model.estimate_row_scan(bound, stats),
            "column-scan": self.cost_model.estimate_column_scan(bound, stats),
        }
        if self.fabric_available:
            estimates["ephemeral-scan"] = self.cost_model.estimate_ephemeral_scan(
                bound, stats
            )
        for col in bound.selection_columns:
            index = self.catalog.index_on(bound.table.schema.name, col)
            if index is None:
                continue
            est = self.cost_model.estimate_index_probe(bound, col)
            if est is not None:
                estimates[f"index({col})"] = est
        winner = min(estimates, key=lambda k: estimates[k].cycles)
        return AccessDecision(
            winner=winner,
            estimates=estimates,
            plan=explain(bound, access_path=estimates[winner].access_path),
        )
