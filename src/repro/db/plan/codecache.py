"""Code-generation fragment cache (paper §III-B, "Code Generation").

Adaptive compiled engines buffer generated code fragments and reuse them
when a query with the same shape recurs. The paper's observation: the
fabric "aids code generation in two ways. First, Relational Fabric does
not require to buffer different layouts ... Second, since data layouts
are not buffered, Relational Fabric can buffer more code fragments and
reuse previously compiled code fragments more aggressively."

This module makes that claim measurable. A fragment's identity is its
*code shape*:

* on a **row layout**, generated code bakes in the physical byte offsets
  of every accessed column — two queries over different column subsets
  compile to different fragments even when their operator shapes match;
* through the **fabric**, every query sees a densely packed layout whose
  offsets depend only on the accessed *types in order* — structurally
  identical queries share one fragment regardless of which columns they
  touch.

The cache itself is a plain LRU with a compile-cost charge on misses, so
benches can report hit rates and amortized compilation cycles per
workload under both layouts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.db.plan.binder import BoundQuery
from repro.errors import PlanError

#: Cycles to generate + compile one fragment (a few ms at 1.5 GHz —
#: in line with published JIT compilation costs for single operators).
DEFAULT_COMPILE_CYCLES = 3_000_000


def _expr_shape(expr: Optional[Expr], column_token) -> str:
    """Structural rendering of an expression where column references are
    replaced by layout-dependent tokens."""
    if expr is None:
        return "-"
    if isinstance(expr, ColumnRef):
        return column_token(expr.name)
    if isinstance(expr, Literal):
        # Generated code treats constants as runtime parameters.
        return "?"
    if isinstance(expr, BinOp):
        return f"({_expr_shape(expr.left, column_token)}{expr.op}{_expr_shape(expr.right, column_token)})"
    if isinstance(expr, Compare):
        return f"({_expr_shape(expr.left, column_token)}{expr.op}{_expr_shape(expr.right, column_token)})"
    if isinstance(expr, And):
        return "&".join(_expr_shape(t, column_token) for t in expr.terms)
    if isinstance(expr, Or):
        return "|".join(_expr_shape(t, column_token) for t in expr.terms)
    if isinstance(expr, Not):
        return f"!{_expr_shape(expr.term, column_token)}"
    if isinstance(expr, Between):
        return f"bw({_expr_shape(expr.term, column_token)})"
    if isinstance(expr, InList):
        # Membership over N runtime constants: the generated code differs
        # by list length, not by the values.
        return f"in({_expr_shape(expr.term, column_token)},{len(expr.values)})"
    raise PlanError(f"cannot shape expression {type(expr).__name__}")


def fragment_signature(bound: BoundQuery, layout: str) -> str:
    """The compiled fragment's identity for ``bound`` under ``layout``.

    ``layout="row"`` bakes physical offsets in; ``layout="ephemeral"``
    uses packed positional types only; ``layout="column"`` uses one
    stream per column, so the token is the column's type at its stream
    position (structurally like ephemeral but per-table). Columns of
    joined tables are tokenized against their own table (prefixed with
    the join ordinal) — join-side data is never fabric-packed, so their
    tokens bake offsets under every layout.
    """
    schema = bound.table.schema
    join_schemas = tuple(j.table.schema for j in bound.joins)

    def join_token(name: str) -> Optional[str]:
        # Right-most table wins, matching executor merge semantics.
        for ti in range(len(join_schemas) - 1, -1, -1):
            js = join_schemas[ti]
            if js.has_column(name):
                return f"J{ti}@{js.offset_of(name)}:{js.column(name).dtype.name}"
        return None

    if layout == "row":
        def token(name: str) -> str:
            if not schema.has_column(name):
                jt = join_token(name)
                if jt is not None:
                    return jt
            col = schema.column(name)
            return f"@{schema.offset_of(name)}:{col.dtype.name}"
    elif layout in ("ephemeral", "column"):
        order = {name: i for i, name in enumerate(bound.referenced_columns)}
        mark = "#" if layout == "ephemeral" else "%"

        def token(name: str) -> str:
            if not schema.has_column(name):
                jt = join_token(name)
                if jt is not None:
                    return jt
            return f"{mark}{order[name]}:{schema.column(name).dtype.name}"
    else:
        raise PlanError(f"unknown layout {layout!r}")

    def in_scope(name: str) -> bool:
        return schema.has_column(name) or any(
            js.has_column(name) for js in join_schemas
        )

    parts = [layout]
    parts.append("W:" + _expr_shape(bound.where, token))
    for out in bound.outputs:
        parts.append(f"O:{out.kind}:{_expr_shape(out.expr, token)}")
    parts.append("G:" + ",".join(token(g) for g in bound.group_by))
    parts.append("S:" + ";".join(
        f"{_expr_shape(o.expr, token)}{'-' if o.descending else '+'}"
        for o in bound.order_by
        if not (isinstance(o.expr, ColumnRef) and not in_scope(o.expr.name))
    ))
    for ti, j in enumerate(bound.joins):
        js = j.table.schema
        rtok = f"J{ti}@{js.offset_of(j.right_col)}:{js.column(j.right_col).dtype.name}"
        parts.append(f"J:{token(j.left_col)}={rtok}")
    if bound.distinct:
        parts.append("D")
    if bound.having is not None:
        parts.append("H:" + _expr_shape(bound.having, lambda n: n))
    return "|".join(parts)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    compile_cycles: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class Fragment:
    """One resident compiled fragment: the fused kernel plus bookkeeping.

    ``payload`` is whatever the compiler produced (for the engines: a
    :class:`repro.db.exec.vector.FusedKernel`); ``None`` for callers that
    only track shapes. ``plans`` memoizes EXPLAIN strings per access
    path so warm hits skip plan rendering too.
    """

    fragment_id: int
    payload: object = None
    uses: int = 0
    plans: Dict[str, str] = field(default_factory=dict)


class CodeFragmentCache:
    """An LRU of compiled fragments keyed by code shape."""

    def __init__(
        self,
        capacity: int = 64,
        compile_cycles: float = DEFAULT_COMPILE_CYCLES,
    ):
        if capacity < 1:
            raise PlanError("cache needs capacity >= 1")
        self.capacity = capacity
        self.compile_cycles = compile_cycles
        self.stats = CacheStats()
        self._fragments: "OrderedDict[str, Fragment]" = OrderedDict()
        self._next_id = 0

    def lookup(self, bound: BoundQuery, layout: str) -> Tuple[bool, float]:
        """Fetch-or-compile the fragment for ``bound`` under ``layout``;
        returns ``(hit, cycles_charged)``."""
        hit, cycles, _ = self.fetch(bound, layout)
        return hit, cycles

    def fetch(
        self, bound: BoundQuery, layout: str, compiler=None
    ) -> Tuple[bool, float, Fragment]:
        """Fetch-or-compile with a payload.

        On a miss, ``compiler()`` (if given) builds the cached payload —
        e.g. a fused kernel chain — and the compile cost is charged; on a
        hit the resident fragment comes back untouched with zero cycles.
        Returns ``(hit, cycles_charged, fragment)``.
        """
        key = fragment_signature(bound, layout)
        fragment = self._fragments.get(key)
        if fragment is not None:
            self._fragments.move_to_end(key)
            self.stats.hits += 1
            fragment.uses += 1
            return True, 0.0, fragment
        self.stats.misses += 1
        self.stats.compile_cycles += self.compile_cycles
        if len(self._fragments) >= self.capacity:
            self._fragments.popitem(last=False)
            self.stats.evictions += 1
        fragment = Fragment(
            fragment_id=self._next_id,
            payload=compiler() if compiler is not None else None,
            uses=1,
        )
        self._fragments[key] = fragment
        self._next_id += 1
        return False, self.compile_cycles, fragment

    @property
    def resident(self) -> int:
        return len(self._fragments)
