"""Binding: resolve parsed statements against the catalog.

The binder validates column references, pads CHAR literals to their
column width (so vectorized byte-string comparisons are exact), splits
the WHERE clause into conjuncts, and — crucially for the fabric — derives
the **referenced column group**: exactly the columns the query touches,
which becomes the ephemeral geometry of the RM engine and the stream set
of the column engine.

Name resolution works over a *scope*: the main table plus each joined
table, addressed by alias (or table name when unaliased). Unqualified
names that resolve in more than one scope entry are ambiguous and
rejected; qualified names (``o.amount``) resolve against their entry and
are stripped to bare :class:`ColumnRef`\\ s — executors key batches by
bare column name, which also means a join between tables sharing a
column name is rejected when that name is referenced.

DML statements bind through :func:`bind_insert` / :func:`bind_update` /
:func:`bind_delete` into small bound forms the statement pipeline runs
as MVCC transactions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.db.catalog import Catalog
from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    InList,
    Literal,
    Not,
    Or,
    conjuncts,
    op_count,
)
from repro.db.schema import TableSchema
from repro.db.sql.nodes import (
    Aggregate,
    DeleteStmt,
    InsertStmt,
    InSubquery,
    OrderItem,
    ScalarSubquery,
    SelectStmt,
    UpdateStmt,
)
from repro.db.table import Table
from repro.errors import SqlError


@dataclass(frozen=True)
class BoundOutput:
    """One output column of the query."""

    name: str
    #: "expr" for plain expressions / group keys, or an aggregate function.
    kind: str  # "expr" | "sum" | "avg" | "count" | "min" | "max"
    expr: Optional[Expr]  # None only for COUNT(*)


@dataclass(frozen=True)
class BoundJoin:
    """One equi-join step in a left-deep chain.

    ``left_col`` lives in the main table *or* in any previously joined
    table; ``right_col`` always lives in ``table``.
    """

    table: Table
    left_col: str
    right_col: str


@dataclass
class BoundQuery:
    """A validated query ready for any engine to execute."""

    table: Table
    outputs: Tuple[BoundOutput, ...]
    where: Optional[Expr]
    where_conjuncts: Tuple[Expr, ...]
    group_by: Tuple[str, ...]
    order_by: Tuple[OrderItem, ...]
    limit: Optional[int]
    joins: Tuple[BoundJoin, ...]
    #: Post-aggregation filter over output columns, or None.
    having: Optional[Expr]
    #: Deduplicate result rows (SELECT DISTINCT).
    distinct: bool
    #: Columns of the main table the query touches, in schema order.
    referenced_columns: Tuple[str, ...]
    #: Columns referenced by the WHERE clause only.
    selection_columns: Tuple[str, ...]
    #: Columns referenced by outputs / grouping / ordering only.
    projection_columns: Tuple[str, ...]
    #: WHERE conjuncts touching only main-table columns — evaluated as a
    #: pre-join mask over the scan. Equals ``where`` when every conjunct
    #: is main-table-only (notably all join-free queries).
    where_main: Optional[Expr] = None
    #: Remaining conjuncts (referencing joined columns) — evaluated after
    #: the join chain, before aggregation.
    where_post: Optional[Expr] = None
    #: Rows to skip before LIMIT applies (OFFSET clause).
    offset: Optional[int] = None

    @property
    def join(self) -> Optional[BoundJoin]:
        """The first join (legacy single-join accessor)."""
        return self.joins[0] if self.joins else None

    @property
    def has_aggregates(self) -> bool:
        return any(o.kind != "expr" for o in self.outputs)

    @property
    def where_op_count(self) -> int:
        return op_count(self.where) if self.where is not None else 0

    @property
    def output_op_count(self) -> int:
        return sum(op_count(o.expr) for o in self.outputs if o.expr is not None)

    @property
    def aggregate_count(self) -> int:
        return sum(1 for o in self.outputs if o.kind != "expr")


class _Scope:
    """Name resolution over the tables a statement has in scope."""

    def __init__(self):
        self.entries: List[Tuple[str, TableSchema]] = []

    def add(self, key: str, schema: TableSchema) -> None:
        if any(k == key for k, _ in self.entries):
            raise SqlError(
                f"duplicate table name or alias {key!r} in FROM/JOIN; "
                "alias one of the occurrences differently"
            )
        self.entries.append((key, schema))

    @property
    def schemas(self) -> Tuple[TableSchema, ...]:
        return tuple(s for _, s in self.entries)

    def resolve(self, ref: ColumnRef) -> ColumnRef:
        """Validate ``ref`` and return it with the qualifier stripped."""
        if ref.qualifier is not None:
            matches = [s for k, s in self.entries if k == ref.qualifier]
            if not matches:
                known = ", ".join(repr(k) for k, _ in self.entries)
                raise SqlError(
                    f"unknown table alias {ref.qualifier!r} "
                    f"(in scope: {known})"
                )
            if not matches[0].has_column(ref.name):
                raise SqlError(
                    f"table {ref.qualifier!r} has no column {ref.name!r}"
                )
            holders = [k for k, s in self.entries if s.has_column(ref.name)]
            if len(holders) > 1:
                raise SqlError(
                    f"column {ref.name!r} exists in multiple joined tables "
                    f"({', '.join(repr(h) for h in holders)}); this dialect "
                    "executes joins over a flat column namespace and needs "
                    "distinct column names"
                )
            return ColumnRef(name=ref.name)
        holders = [k for k, s in self.entries if s.has_column(ref.name)]
        if not holders:
            raise SqlError(f"unknown column {ref.name!r}")
        if len(holders) > 1:
            raise SqlError(
                f"ambiguous column {ref.name!r}: present in "
                f"{', '.join(repr(h) for h in holders)} — qualify it"
            )
        return ColumnRef(name=ref.name) if ref.qualifier else ref


def _scope_for(stmt: SelectStmt, schema: TableSchema, join_entries) -> _Scope:
    scope = _Scope()
    scope.add(stmt.alias or stmt.table, schema)
    for key, join_schema in join_entries:
        scope.add(key, join_schema)
    return scope


def bind(stmt: SelectStmt, catalog: Catalog) -> BoundQuery:
    """Validate ``stmt`` against ``catalog`` and return a bound query."""
    table = catalog.table(stmt.table)
    schema = table.schema

    # Build the scope first (every table + alias), then validate join
    # keys against it: a key may come from the main table or any table
    # already joined in (left-deep chaining).
    scope = _Scope()
    scope.add(stmt.alias or stmt.table, schema)
    joins: List[BoundJoin] = []
    prior_schemas: List[TableSchema] = [schema]
    prior_keys: List[str] = [stmt.alias or stmt.table]
    for clause in stmt.joins:
        join_table = catalog.table(clause.table)
        join_schema = join_table.schema
        join_key = clause.alias or clause.table
        scope.add(join_key, join_schema)

        def _in_prior(qual: Optional[str], col: str) -> bool:
            if qual is not None:
                return qual in prior_keys and any(
                    s.has_column(col)
                    for k, s in zip(prior_keys, prior_schemas)
                    if k == qual
                )
            return any(s.has_column(col) for s in prior_schemas)

        def _in_joined(qual: Optional[str], col: str) -> bool:
            if qual is not None:
                return qual == join_key and join_schema.has_column(col)
            return join_schema.has_column(col)

        left_qual, left_col = clause.left_qual, clause.left_col
        right_qual, right_col = clause.right_qual, clause.right_col
        if _in_prior(left_qual, left_col) and _in_joined(right_qual, right_col):
            pass  # canonical orientation
        elif _in_joined(left_qual, left_col) and _in_prior(right_qual, right_col):
            left_qual, left_col, right_qual, right_col = (
                right_qual, right_col, left_qual, left_col,
            )
        else:
            raise SqlError(
                f"join keys {clause.left_col!r} = {clause.right_col!r} must "
                f"pair one column of {join_key!r} with one column of the "
                f"tables already in scope"
            )
        joins.append(
            BoundJoin(table=join_table, left_col=left_col, right_col=right_col)
        )
        prior_schemas.append(join_schema)
        prior_keys.append(join_key)
    schemas = scope.schemas

    def resolve(expr: Expr) -> Expr:
        return _bind_expr(expr, scope)

    items = stmt.items
    from repro.db.sql.nodes import SelectItem, Star

    if len(items) == 1 and isinstance(items[0].expr, Star):
        items = tuple(
            SelectItem(expr=ColumnRef(name)) for name in schema.column_names
        )

    outputs: List[BoundOutput] = []
    for pos, item in enumerate(items):
        if item.is_aggregate:
            agg: Aggregate = item.expr
            bound_arg = resolve(agg.arg) if agg.arg is not None else None
            name = item.alias or f"{agg.func}_{pos}"
            outputs.append(BoundOutput(name=name, kind=agg.func, expr=bound_arg))
        else:
            bound = resolve(item.expr)
            name = item.alias or (
                bound.name if isinstance(bound, ColumnRef) else f"col{pos}"
            )
            outputs.append(BoundOutput(name=name, kind="expr", expr=bound))

    if stmt.group_by:
        for name in stmt.group_by:
            scope.resolve(ColumnRef(name=name))
        non_agg = [o for o in outputs if o.kind == "expr"]
        for o in non_agg:
            if not isinstance(o.expr, ColumnRef) or o.expr.name not in stmt.group_by:
                raise SqlError(
                    f"output {o.name!r} is neither aggregated nor in GROUP BY"
                )
    elif any(o.kind != "expr" for o in outputs) and any(
        o.kind == "expr" for o in outputs
    ):
        raise SqlError("mixing aggregates and plain columns needs GROUP BY")

    where = resolve(stmt.where) if stmt.where is not None else None
    # Split the WHERE into a pre-join mask (conjuncts over main-table
    # columns only) and a post-join residue. When nothing references a
    # joined column the original expression is reused verbatim so plans,
    # signatures, and cost recipes are unchanged.
    where_main: Optional[Expr] = where
    where_post: Optional[Expr] = None
    if where is not None and joins:
        main_parts: List[Expr] = []
        post_parts: List[Expr] = []
        for part in conjuncts(where):
            if all(schema.has_column(c) for c in part.columns()):
                main_parts.append(part)
            else:
                post_parts.append(part)
        if post_parts:
            where_main = _recombine(main_parts)
            where_post = _recombine(post_parts)
    # ORDER BY may reference output aliases (SQL scoping): leave those
    # unresolved against the schema — they bind to the result columns.
    output_names = {o.name for o in outputs}

    def resolve_order(expr: Expr) -> Expr:
        if isinstance(expr, ColumnRef) and expr.qualifier is None \
                and expr.name in output_names:
            return expr
        return resolve(expr)

    order_by = tuple(
        OrderItem(expr=resolve_order(o.expr), descending=o.descending)
        for o in stmt.order_by
    )
    # HAVING shares ORDER BY's scoping: output aliases and group keys.
    having = None
    if stmt.having is not None:
        having = _bind_scoped(stmt.having, output_names, scope)

    sel_cols = _columns_of(where, schema) if where is not None else []
    proj_cols: List[str] = []
    for o in outputs:
        if o.expr is not None:
            proj_cols.extend(_columns_of(o.expr, schema))
    proj_cols.extend(c for c in stmt.group_by)
    for o in order_by:
        proj_cols.extend(_columns_of(o.expr, schema))
    if having is not None:
        proj_cols.extend(_columns_of(having, schema))
    for bj in joins:
        # Main-table probe keys are touched for every row (keys living in
        # a previously joined table ride along as join outputs instead).
        if schema.has_column(bj.left_col):
            proj_cols.append(bj.left_col)

    referenced = _in_schema_order(schema, set(sel_cols) | set(proj_cols))
    if not referenced:
        # COUNT(*)-only queries still need to see row existence; touch the
        # narrowest column.
        narrowest = min(schema.user_columns, key=lambda c: c.dtype.width)
        referenced = (narrowest.name,)

    return BoundQuery(
        table=table,
        outputs=tuple(outputs),
        where=where,
        where_conjuncts=conjuncts(where) if where is not None else (),
        group_by=stmt.group_by,
        order_by=order_by,
        limit=stmt.limit,
        joins=tuple(joins),
        having=having,
        distinct=stmt.distinct,
        referenced_columns=referenced,
        selection_columns=_in_schema_order(schema, set(sel_cols)),
        projection_columns=_in_schema_order(schema, set(proj_cols)),
        where_main=where_main,
        where_post=where_post,
        offset=stmt.offset,
    )


# ----------------------------------------------------------------------
# DML binding.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundInsert:
    """Constant rows ready to insert, keyed by column name."""

    table: Table
    rows: Tuple[Dict[str, Any], ...]


@dataclass(frozen=True)
class BoundUpdate:
    """SET expressions (bound against the table) plus an optional filter."""

    table: Table
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr]


@dataclass(frozen=True)
class BoundDelete:
    table: Table
    where: Optional[Expr]


def _dml_scope(table_name: str, alias: Optional[str], schema) -> _Scope:
    scope = _Scope()
    scope.add(alias or table_name, schema)
    return scope


def bind_insert(stmt: InsertStmt, catalog: Catalog) -> BoundInsert:
    table = catalog.table(stmt.table)
    schema = table.schema
    columns = stmt.columns or tuple(c.name for c in schema.user_columns)
    seen = set()
    for name in columns:
        _require_column(schema, name)
        if name in seen:
            raise SqlError(f"column {name!r} named twice in INSERT")
        seen.add(name)
    missing = [c.name for c in schema.user_columns if c.name not in seen]
    if missing:
        raise SqlError(
            f"INSERT must provide every column of {schema.name!r} "
            f"(missing {', '.join(repr(m) for m in missing)}); this "
            "dialect has no column defaults"
        )
    rows: List[Dict[str, Any]] = []
    for row in stmt.rows:
        if len(row) != len(columns):
            raise SqlError(
                f"INSERT row has {len(row)} values for {len(columns)} columns"
            )
        values: Dict[str, Any] = {}
        for name, expr in zip(columns, row):
            if expr.columns():
                raise SqlError(
                    f"INSERT value for {name!r} must be a constant expression"
                )
            values[name] = _coerce_constant(expr, schema, name)
        rows.append(values)
    return BoundInsert(table=table, rows=tuple(rows))


def bind_update(stmt: UpdateStmt, catalog: Catalog) -> BoundUpdate:
    table = catalog.table(stmt.table)
    schema = table.schema
    scope = _dml_scope(stmt.table, stmt.alias, schema)
    seen = set()
    assignments: List[Tuple[str, Expr]] = []
    for name, expr in stmt.assignments:
        _require_column(schema, name)
        if name in seen:
            raise SqlError(f"column {name!r} assigned twice in UPDATE")
        seen.add(name)
        assignments.append((name, _bind_expr(expr, scope)))
    where = _bind_expr(stmt.where, scope) if stmt.where is not None else None
    return BoundUpdate(table=table, assignments=tuple(assignments), where=where)


def bind_delete(stmt: DeleteStmt, catalog: Catalog) -> BoundDelete:
    table = catalog.table(stmt.table)
    scope = _dml_scope(stmt.table, stmt.alias, table.schema)
    where = _bind_expr(stmt.where, scope) if stmt.where is not None else None
    return BoundDelete(table=table, where=where)


def _coerce_constant(expr: Expr, schema: TableSchema, name: str) -> Any:
    try:
        value = expr.eval_row({})
    except SqlError:
        raise
    except Exception as exc:  # noqa: BLE001 — surface as a bind error
        raise SqlError(f"cannot evaluate INSERT value for {name!r}: {exc}")
    return value


def _recombine(parts: List[Expr]) -> Optional[Expr]:
    """Re-AND a conjunct subset (None / single term / And)."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(terms=tuple(parts))


def _bind_scoped(
    expr: Expr,
    output_names: set,
    scope: _Scope,
) -> Expr:
    """Bind an expression that may reference output aliases (HAVING)."""
    if isinstance(expr, ColumnRef):
        if expr.qualifier is None and expr.name in output_names:
            return expr
        return _bind_expr(expr, scope)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=_bind_scoped(expr.left, output_names, scope),
            right=_bind_scoped(expr.right, output_names, scope),
        )
    if isinstance(expr, Compare):
        return Compare(
            op=expr.op,
            left=_bind_scoped(expr.left, output_names, scope),
            right=_bind_scoped(expr.right, output_names, scope),
        )
    if isinstance(expr, And):
        return And(
            terms=tuple(
                _bind_scoped(t, output_names, scope) for t in expr.terms
            )
        )
    if isinstance(expr, Or):
        return Or(
            terms=tuple(
                _bind_scoped(t, output_names, scope) for t in expr.terms
            )
        )
    if isinstance(expr, Not):
        return Not(term=_bind_scoped(expr.term, output_names, scope))
    if isinstance(expr, Between):
        return Between(
            term=_bind_scoped(expr.term, output_names, scope),
            low=_bind_scoped(expr.low, output_names, scope),
            high=_bind_scoped(expr.high, output_names, scope),
        )
    if isinstance(expr, InList):
        return InList(
            term=_bind_scoped(expr.term, output_names, scope),
            values=expr.values,
        )
    raise SqlError(f"cannot bind HAVING node {type(expr).__name__}")


def _in_schema_order(schema: TableSchema, names: set) -> Tuple[str, ...]:
    return tuple(c.name for c in schema.user_columns if c.name in names)


def _require_column(schema: TableSchema, name: str) -> None:
    if not schema.has_column(name):
        raise SqlError(f"table {schema.name!r} has no column {name!r}")


def _columns_of(expr: Expr, schema: TableSchema) -> List[str]:
    return [c for c in expr.columns() if schema.has_column(c)]


def _bind_expr(expr: Expr, scope: _Scope) -> Expr:
    """Validate references and pad CHAR literals in comparisons.

    ``scope`` lists the tables the statement can see: the main table
    first, then each joined table in join order, addressed by alias.
    """
    schemas = scope.schemas
    if isinstance(expr, ColumnRef):
        return scope.resolve(expr)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, (ScalarSubquery, InSubquery)):
        raise SqlError(
            "subqueries are only supported through the statement pipeline "
            "(repro.db.sql.pipeline.Session), which folds them before "
            "binding"
        )
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=_bind_expr(expr.left, scope),
            right=_bind_expr(expr.right, scope),
        )
    if isinstance(expr, Compare):
        left = _bind_expr(expr.left, scope)
        right = _bind_expr(expr.right, scope)
        left, right = _pad_char_literal(left, right, schemas)
        right, left = _pad_char_literal(right, left, schemas)
        return Compare(op=expr.op, left=left, right=right)
    if isinstance(expr, And):
        return And(terms=tuple(_bind_expr(t, scope) for t in expr.terms))
    if isinstance(expr, Or):
        return Or(terms=tuple(_bind_expr(t, scope) for t in expr.terms))
    if isinstance(expr, Not):
        return Not(term=_bind_expr(expr.term, scope))
    if isinstance(expr, Between):
        return Between(
            term=_bind_expr(expr.term, scope),
            low=_bind_expr(expr.low, scope),
            high=_bind_expr(expr.high, scope),
        )
    if isinstance(expr, InList):
        term = _bind_expr(expr.term, scope)
        values = _pad_in_list(term, expr.values, schemas)
        return InList(term=term, values=values)
    raise SqlError(f"cannot bind expression node {type(expr).__name__}")


def _pad_char_literal(side: Expr, other: Expr, schemas: Tuple[TableSchema, ...]):
    """If ``side`` is a CHAR column and ``other`` a str literal, pad the
    literal to the column width as NUL-padded bytes."""
    if not (isinstance(side, ColumnRef) and isinstance(other, Literal)):
        return side, other
    if not isinstance(other.value, str):
        return side, other
    for sch in schemas:
        if sch.has_column(side.name):
            dtype = sch.column(side.name).dtype
            if dtype.np_dtype is None:
                padded = other.value.encode().ljust(dtype.width, b"\x00")
                return side, Literal(padded)
    return side, other


def _pad_in_list(term: Expr, values: Tuple[Any, ...], schemas) -> Tuple[Any, ...]:
    """NUL-pad str members of an IN list when the term is a CHAR column."""
    if not isinstance(term, ColumnRef):
        return values
    for sch in schemas:
        if sch.has_column(term.name):
            dtype = sch.column(term.name).dtype
            if dtype.np_dtype is None:
                return tuple(
                    v.encode().ljust(dtype.width, b"\x00")
                    if isinstance(v, str) else v
                    for v in values
                )
            break
    return values
