"""Binding: resolve a parsed ``SELECT`` against the catalog.

The binder validates column references, pads CHAR literals to their
column width (so vectorized byte-string comparisons are exact), splits
the WHERE clause into conjuncts, and — crucially for the fabric — derives
the **referenced column group**: exactly the columns the query touches,
which becomes the ephemeral geometry of the RM engine and the stream set
of the column engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.db.catalog import Catalog
from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    Literal,
    Not,
    Or,
    conjuncts,
    op_count,
)
from repro.db.schema import TableSchema
from repro.db.sql.nodes import Aggregate, JoinClause, OrderItem, SelectStmt
from repro.db.table import Table
from repro.errors import SqlError


@dataclass(frozen=True)
class BoundOutput:
    """One output column of the query."""

    name: str
    #: "expr" for plain expressions / group keys, or an aggregate function.
    kind: str  # "expr" | "sum" | "avg" | "count" | "min" | "max"
    expr: Optional[Expr]  # None only for COUNT(*)


@dataclass(frozen=True)
class BoundJoin:
    """One equi-join step in a left-deep chain.

    ``left_col`` lives in the main table *or* in any previously joined
    table; ``right_col`` always lives in ``table``.
    """

    table: Table
    left_col: str
    right_col: str


@dataclass
class BoundQuery:
    """A validated query ready for any engine to execute."""

    table: Table
    outputs: Tuple[BoundOutput, ...]
    where: Optional[Expr]
    where_conjuncts: Tuple[Expr, ...]
    group_by: Tuple[str, ...]
    order_by: Tuple[OrderItem, ...]
    limit: Optional[int]
    joins: Tuple[BoundJoin, ...]
    #: Post-aggregation filter over output columns, or None.
    having: Optional[Expr]
    #: Deduplicate result rows (SELECT DISTINCT).
    distinct: bool
    #: Columns of the main table the query touches, in schema order.
    referenced_columns: Tuple[str, ...]
    #: Columns referenced by the WHERE clause only.
    selection_columns: Tuple[str, ...]
    #: Columns referenced by outputs / grouping / ordering only.
    projection_columns: Tuple[str, ...]
    #: WHERE conjuncts touching only main-table columns — evaluated as a
    #: pre-join mask over the scan. Equals ``where`` when every conjunct
    #: is main-table-only (notably all join-free queries).
    where_main: Optional[Expr] = None
    #: Remaining conjuncts (referencing joined columns) — evaluated after
    #: the join chain, before aggregation.
    where_post: Optional[Expr] = None

    @property
    def join(self) -> Optional[BoundJoin]:
        """The first join (legacy single-join accessor)."""
        return self.joins[0] if self.joins else None

    @property
    def has_aggregates(self) -> bool:
        return any(o.kind != "expr" for o in self.outputs)

    @property
    def where_op_count(self) -> int:
        return op_count(self.where) if self.where is not None else 0

    @property
    def output_op_count(self) -> int:
        return sum(op_count(o.expr) for o in self.outputs if o.expr is not None)

    @property
    def aggregate_count(self) -> int:
        return sum(1 for o in self.outputs if o.kind != "expr")


def bind(stmt: SelectStmt, catalog: Catalog) -> BoundQuery:
    """Validate ``stmt`` against ``catalog`` and return a bound query."""
    table = catalog.table(stmt.table)
    schema = table.schema
    joins: List[BoundJoin] = []
    join_schemas: List[TableSchema] = []
    for clause in stmt.joins:
        join_table = catalog.table(clause.table)
        # The probe key may come from the main table or any table already
        # joined in (left-deep chaining: orders JOIN customer ON o_custkey).
        if not (
            schema.has_column(clause.left_col)
            or any(js.has_column(clause.left_col) for js in join_schemas)
        ):
            raise SqlError(
                f"join key {clause.left_col!r} not found in {schema.name!r} "
                f"or any previously joined table"
            )
        _require_column(join_table.schema, clause.right_col)
        joins.append(
            BoundJoin(
                table=join_table,
                left_col=clause.left_col,
                right_col=clause.right_col,
            )
        )
        join_schemas.append(join_table.schema)
    schemas = (schema, *join_schemas)

    def resolve(expr: Expr) -> Expr:
        return _bind_expr(expr, schemas)

    items = stmt.items
    from repro.db.sql.nodes import SelectItem, Star

    if len(items) == 1 and isinstance(items[0].expr, Star):
        items = tuple(
            SelectItem(expr=ColumnRef(name)) for name in schema.column_names
        )

    outputs: List[BoundOutput] = []
    for pos, item in enumerate(items):
        if item.is_aggregate:
            agg: Aggregate = item.expr
            bound_arg = resolve(agg.arg) if agg.arg is not None else None
            name = item.alias or f"{agg.func}_{pos}"
            outputs.append(BoundOutput(name=name, kind=agg.func, expr=bound_arg))
        else:
            bound = resolve(item.expr)
            name = item.alias or (
                bound.name if isinstance(bound, ColumnRef) else f"col{pos}"
            )
            outputs.append(BoundOutput(name=name, kind="expr", expr=bound))

    if stmt.group_by:
        for name in stmt.group_by:
            if not any(s.has_column(name) for s in schemas):
                raise SqlError(f"unknown GROUP BY column {name!r}")
        non_agg = [o for o in outputs if o.kind == "expr"]
        for o in non_agg:
            if not isinstance(o.expr, ColumnRef) or o.expr.name not in stmt.group_by:
                raise SqlError(
                    f"output {o.name!r} is neither aggregated nor in GROUP BY"
                )
    elif any(o.kind != "expr" for o in outputs) and any(
        o.kind == "expr" for o in outputs
    ):
        raise SqlError("mixing aggregates and plain columns needs GROUP BY")

    where = resolve(stmt.where) if stmt.where is not None else None
    # Split the WHERE into a pre-join mask (conjuncts over main-table
    # columns only) and a post-join residue. When nothing references a
    # joined column the original expression is reused verbatim so plans,
    # signatures, and cost recipes are unchanged.
    where_main: Optional[Expr] = where
    where_post: Optional[Expr] = None
    if where is not None and joins:
        main_parts: List[Expr] = []
        post_parts: List[Expr] = []
        for part in conjuncts(where):
            if all(schema.has_column(c) for c in part.columns()):
                main_parts.append(part)
            else:
                post_parts.append(part)
        if post_parts:
            where_main = _recombine(main_parts)
            where_post = _recombine(post_parts)
    # ORDER BY may reference output aliases (SQL scoping): leave those
    # unresolved against the schema — they bind to the result columns.
    output_names = {o.name for o in outputs}

    def resolve_order(expr: Expr) -> Expr:
        if isinstance(expr, ColumnRef) and expr.name in output_names:
            return expr
        return resolve(expr)

    order_by = tuple(
        OrderItem(expr=resolve_order(o.expr), descending=o.descending)
        for o in stmt.order_by
    )
    # HAVING shares ORDER BY's scoping: output aliases and group keys.
    having = None
    if stmt.having is not None:
        having = _bind_scoped(stmt.having, output_names, schemas)

    sel_cols = _columns_of(where, schema) if where is not None else []
    proj_cols: List[str] = []
    for o in outputs:
        if o.expr is not None:
            proj_cols.extend(_columns_of(o.expr, schema))
    proj_cols.extend(c for c in stmt.group_by)
    for o in order_by:
        proj_cols.extend(_columns_of(o.expr, schema))
    if having is not None:
        proj_cols.extend(_columns_of(having, schema))
    for bj in joins:
        # Main-table probe keys are touched for every row (keys living in
        # a previously joined table ride along as join outputs instead).
        if schema.has_column(bj.left_col):
            proj_cols.append(bj.left_col)

    referenced = _in_schema_order(schema, set(sel_cols) | set(proj_cols))
    if not referenced:
        # COUNT(*)-only queries still need to see row existence; touch the
        # narrowest column.
        narrowest = min(schema.user_columns, key=lambda c: c.dtype.width)
        referenced = (narrowest.name,)

    return BoundQuery(
        table=table,
        outputs=tuple(outputs),
        where=where,
        where_conjuncts=conjuncts(where) if where is not None else (),
        group_by=stmt.group_by,
        order_by=order_by,
        limit=stmt.limit,
        joins=tuple(joins),
        having=having,
        distinct=stmt.distinct,
        referenced_columns=referenced,
        selection_columns=_in_schema_order(schema, set(sel_cols)),
        projection_columns=_in_schema_order(schema, set(proj_cols)),
        where_main=where_main,
        where_post=where_post,
    )


def _recombine(parts: List[Expr]) -> Optional[Expr]:
    """Re-AND a conjunct subset (None / single term / And)."""
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(terms=tuple(parts))


def _bind_scoped(
    expr: Expr,
    output_names: set,
    schemas: Tuple[TableSchema, ...],
) -> Expr:
    """Bind an expression that may reference output aliases (HAVING)."""
    if isinstance(expr, ColumnRef):
        if expr.name in output_names:
            return expr
        return _bind_expr(expr, schemas)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=_bind_scoped(expr.left, output_names, schemas),
            right=_bind_scoped(expr.right, output_names, schemas),
        )
    if isinstance(expr, Compare):
        return Compare(
            op=expr.op,
            left=_bind_scoped(expr.left, output_names, schemas),
            right=_bind_scoped(expr.right, output_names, schemas),
        )
    if isinstance(expr, And):
        return And(
            terms=tuple(
                _bind_scoped(t, output_names, schemas) for t in expr.terms
            )
        )
    if isinstance(expr, Or):
        return Or(
            terms=tuple(
                _bind_scoped(t, output_names, schemas) for t in expr.terms
            )
        )
    if isinstance(expr, Not):
        return Not(term=_bind_scoped(expr.term, output_names, schemas))
    if isinstance(expr, Between):
        return Between(
            term=_bind_scoped(expr.term, output_names, schemas),
            low=_bind_scoped(expr.low, output_names, schemas),
            high=_bind_scoped(expr.high, output_names, schemas),
        )
    raise SqlError(f"cannot bind HAVING node {type(expr).__name__}")


def _in_schema_order(schema: TableSchema, names: set) -> Tuple[str, ...]:
    return tuple(c.name for c in schema.user_columns if c.name in names)


def _require_column(schema: TableSchema, name: str) -> None:
    if not schema.has_column(name):
        raise SqlError(f"table {schema.name!r} has no column {name!r}")


def _columns_of(expr: Expr, schema: TableSchema) -> List[str]:
    return [c for c in expr.columns() if schema.has_column(c)]


def _bind_expr(expr: Expr, schemas: Tuple[TableSchema, ...]) -> Expr:
    """Validate references and pad CHAR literals in comparisons.

    ``schemas`` lists the tables in scope: the main table first, then
    each joined table in join order (name lookups resolve first match).
    """
    if isinstance(expr, ColumnRef):
        if any(s.has_column(expr.name) for s in schemas):
            return expr
        raise SqlError(f"unknown column {expr.name!r}")
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=_bind_expr(expr.left, schemas),
            right=_bind_expr(expr.right, schemas),
        )
    if isinstance(expr, Compare):
        left = _bind_expr(expr.left, schemas)
        right = _bind_expr(expr.right, schemas)
        left, right = _pad_char_literal(left, right, schemas)
        right, left = _pad_char_literal(right, left, schemas)
        return Compare(op=expr.op, left=left, right=right)
    if isinstance(expr, And):
        return And(terms=tuple(_bind_expr(t, schemas) for t in expr.terms))
    if isinstance(expr, Or):
        return Or(terms=tuple(_bind_expr(t, schemas) for t in expr.terms))
    if isinstance(expr, Not):
        return Not(term=_bind_expr(expr.term, schemas))
    if isinstance(expr, Between):
        return Between(
            term=_bind_expr(expr.term, schemas),
            low=_bind_expr(expr.low, schemas),
            high=_bind_expr(expr.high, schemas),
        )
    raise SqlError(f"cannot bind expression node {type(expr).__name__}")


def _pad_char_literal(side: Expr, other: Expr, schemas: Tuple[TableSchema, ...]):
    """If ``side`` is a CHAR column and ``other`` a str literal, pad the
    literal to the column width as NUL-padded bytes."""
    if not (isinstance(side, ColumnRef) and isinstance(other, Literal)):
        return side, other
    if not isinstance(other.value, str):
        return side, other
    for sch in schemas:
        if sch.has_column(side.name):
            dtype = sch.column(side.name).dtype
            if dtype.np_dtype is None:
                padded = other.value.encode().ljust(dtype.width, b"\x00")
                return side, Literal(padded)
    return side, other
