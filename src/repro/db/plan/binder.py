"""Binding: resolve a parsed ``SELECT`` against the catalog.

The binder validates column references, pads CHAR literals to their
column width (so vectorized byte-string comparisons are exact), splits
the WHERE clause into conjuncts, and — crucially for the fabric — derives
the **referenced column group**: exactly the columns the query touches,
which becomes the ephemeral geometry of the RM engine and the stream set
of the column engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.db.catalog import Catalog
from repro.db.expr import (
    And,
    Between,
    BinOp,
    ColumnRef,
    Compare,
    Expr,
    Literal,
    Not,
    Or,
    conjuncts,
    op_count,
)
from repro.db.schema import TableSchema
from repro.db.sql.nodes import Aggregate, JoinClause, OrderItem, SelectStmt
from repro.db.table import Table
from repro.errors import SqlError


@dataclass(frozen=True)
class BoundOutput:
    """One output column of the query."""

    name: str
    #: "expr" for plain expressions / group keys, or an aggregate function.
    kind: str  # "expr" | "sum" | "avg" | "count" | "min" | "max"
    expr: Optional[Expr]  # None only for COUNT(*)


@dataclass(frozen=True)
class BoundJoin:
    table: Table
    left_col: str
    right_col: str


@dataclass
class BoundQuery:
    """A validated query ready for any engine to execute."""

    table: Table
    outputs: Tuple[BoundOutput, ...]
    where: Optional[Expr]
    where_conjuncts: Tuple[Expr, ...]
    group_by: Tuple[str, ...]
    order_by: Tuple[OrderItem, ...]
    limit: Optional[int]
    join: Optional[BoundJoin]
    #: Post-aggregation filter over output columns, or None.
    having: Optional[Expr]
    #: Deduplicate result rows (SELECT DISTINCT).
    distinct: bool
    #: Columns of the main table the query touches, in schema order.
    referenced_columns: Tuple[str, ...]
    #: Columns referenced by the WHERE clause only.
    selection_columns: Tuple[str, ...]
    #: Columns referenced by outputs / grouping / ordering only.
    projection_columns: Tuple[str, ...]

    @property
    def has_aggregates(self) -> bool:
        return any(o.kind != "expr" for o in self.outputs)

    @property
    def where_op_count(self) -> int:
        return op_count(self.where) if self.where is not None else 0

    @property
    def output_op_count(self) -> int:
        return sum(op_count(o.expr) for o in self.outputs if o.expr is not None)

    @property
    def aggregate_count(self) -> int:
        return sum(1 for o in self.outputs if o.kind != "expr")


def bind(stmt: SelectStmt, catalog: Catalog) -> BoundQuery:
    """Validate ``stmt`` against ``catalog`` and return a bound query."""
    table = catalog.table(stmt.table)
    schema = table.schema
    join = None
    join_schema: Optional[TableSchema] = None
    if stmt.join is not None:
        join_table = catalog.table(stmt.join.table)
        join_schema = join_table.schema
        _require_column(schema, stmt.join.left_col)
        _require_column(join_schema, stmt.join.right_col)
        join = BoundJoin(
            table=join_table,
            left_col=stmt.join.left_col,
            right_col=stmt.join.right_col,
        )

    def resolve(expr: Expr) -> Expr:
        return _bind_expr(expr, schema, join_schema)

    items = stmt.items
    from repro.db.sql.nodes import SelectItem, Star

    if len(items) == 1 and isinstance(items[0].expr, Star):
        items = tuple(
            SelectItem(expr=ColumnRef(name)) for name in schema.column_names
        )

    outputs: List[BoundOutput] = []
    for pos, item in enumerate(items):
        if item.is_aggregate:
            agg: Aggregate = item.expr
            bound_arg = resolve(agg.arg) if agg.arg is not None else None
            name = item.alias or f"{agg.func}_{pos}"
            outputs.append(BoundOutput(name=name, kind=agg.func, expr=bound_arg))
        else:
            bound = resolve(item.expr)
            name = item.alias or (
                bound.name if isinstance(bound, ColumnRef) else f"col{pos}"
            )
            outputs.append(BoundOutput(name=name, kind="expr", expr=bound))

    if stmt.group_by:
        for name in stmt.group_by:
            _require_column(schema, name)
        non_agg = [o for o in outputs if o.kind == "expr"]
        for o in non_agg:
            if not isinstance(o.expr, ColumnRef) or o.expr.name not in stmt.group_by:
                raise SqlError(
                    f"output {o.name!r} is neither aggregated nor in GROUP BY"
                )
    elif any(o.kind != "expr" for o in outputs) and any(
        o.kind == "expr" for o in outputs
    ):
        raise SqlError("mixing aggregates and plain columns needs GROUP BY")

    where = resolve(stmt.where) if stmt.where is not None else None
    # ORDER BY may reference output aliases (SQL scoping): leave those
    # unresolved against the schema — they bind to the result columns.
    output_names = {o.name for o in outputs}

    def resolve_order(expr: Expr) -> Expr:
        if isinstance(expr, ColumnRef) and expr.name in output_names:
            return expr
        return resolve(expr)

    order_by = tuple(
        OrderItem(expr=resolve_order(o.expr), descending=o.descending)
        for o in stmt.order_by
    )
    # HAVING shares ORDER BY's scoping: output aliases and group keys.
    having = None
    if stmt.having is not None:
        having = _bind_scoped(stmt.having, output_names, schema, join_schema)

    sel_cols = _columns_of(where, schema) if where is not None else []
    proj_cols: List[str] = []
    for o in outputs:
        if o.expr is not None:
            proj_cols.extend(_columns_of(o.expr, schema))
    proj_cols.extend(c for c in stmt.group_by)
    for o in order_by:
        proj_cols.extend(_columns_of(o.expr, schema))
    if having is not None:
        proj_cols.extend(_columns_of(having, schema))
    if join is not None:
        # The probe key of the main table is touched for every row.
        proj_cols.append(join.left_col)

    referenced = _in_schema_order(schema, set(sel_cols) | set(proj_cols))
    if not referenced:
        # COUNT(*)-only queries still need to see row existence; touch the
        # narrowest column.
        narrowest = min(schema.user_columns, key=lambda c: c.dtype.width)
        referenced = (narrowest.name,)

    return BoundQuery(
        table=table,
        outputs=tuple(outputs),
        where=where,
        where_conjuncts=conjuncts(where) if where is not None else (),
        group_by=stmt.group_by,
        order_by=order_by,
        limit=stmt.limit,
        join=join,
        having=having,
        distinct=stmt.distinct,
        referenced_columns=referenced,
        selection_columns=_in_schema_order(schema, set(sel_cols)),
        projection_columns=_in_schema_order(schema, set(proj_cols)),
    )


def _bind_scoped(
    expr: Expr,
    output_names: set,
    schema: TableSchema,
    join_schema: Optional[TableSchema],
) -> Expr:
    """Bind an expression that may reference output aliases (HAVING)."""
    if isinstance(expr, ColumnRef):
        if expr.name in output_names:
            return expr
        return _bind_expr(expr, schema, join_schema)
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=_bind_scoped(expr.left, output_names, schema, join_schema),
            right=_bind_scoped(expr.right, output_names, schema, join_schema),
        )
    if isinstance(expr, Compare):
        return Compare(
            op=expr.op,
            left=_bind_scoped(expr.left, output_names, schema, join_schema),
            right=_bind_scoped(expr.right, output_names, schema, join_schema),
        )
    if isinstance(expr, And):
        return And(
            terms=tuple(
                _bind_scoped(t, output_names, schema, join_schema) for t in expr.terms
            )
        )
    if isinstance(expr, Or):
        return Or(
            terms=tuple(
                _bind_scoped(t, output_names, schema, join_schema) for t in expr.terms
            )
        )
    if isinstance(expr, Not):
        return Not(term=_bind_scoped(expr.term, output_names, schema, join_schema))
    if isinstance(expr, Between):
        return Between(
            term=_bind_scoped(expr.term, output_names, schema, join_schema),
            low=_bind_scoped(expr.low, output_names, schema, join_schema),
            high=_bind_scoped(expr.high, output_names, schema, join_schema),
        )
    raise SqlError(f"cannot bind HAVING node {type(expr).__name__}")


def _in_schema_order(schema: TableSchema, names: set) -> Tuple[str, ...]:
    return tuple(c.name for c in schema.user_columns if c.name in names)


def _require_column(schema: TableSchema, name: str) -> None:
    if not schema.has_column(name):
        raise SqlError(f"table {schema.name!r} has no column {name!r}")


def _columns_of(expr: Expr, schema: TableSchema) -> List[str]:
    return [c for c in expr.columns() if schema.has_column(c)]


def _bind_expr(
    expr: Expr, schema: TableSchema, join_schema: Optional[TableSchema]
) -> Expr:
    """Validate references and pad CHAR literals in comparisons."""
    if isinstance(expr, ColumnRef):
        if schema.has_column(expr.name):
            return expr
        if join_schema is not None and join_schema.has_column(expr.name):
            return expr
        raise SqlError(f"unknown column {expr.name!r}")
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(
            op=expr.op,
            left=_bind_expr(expr.left, schema, join_schema),
            right=_bind_expr(expr.right, schema, join_schema),
        )
    if isinstance(expr, Compare):
        left = _bind_expr(expr.left, schema, join_schema)
        right = _bind_expr(expr.right, schema, join_schema)
        left, right = _pad_char_literal(left, right, schema, join_schema)
        right, left = _pad_char_literal(right, left, schema, join_schema)
        return Compare(op=expr.op, left=left, right=right)
    if isinstance(expr, And):
        return And(terms=tuple(_bind_expr(t, schema, join_schema) for t in expr.terms))
    if isinstance(expr, Or):
        return Or(terms=tuple(_bind_expr(t, schema, join_schema) for t in expr.terms))
    if isinstance(expr, Not):
        return Not(term=_bind_expr(expr.term, schema, join_schema))
    if isinstance(expr, Between):
        return Between(
            term=_bind_expr(expr.term, schema, join_schema),
            low=_bind_expr(expr.low, schema, join_schema),
            high=_bind_expr(expr.high, schema, join_schema),
        )
    raise SqlError(f"cannot bind expression node {type(expr).__name__}")


def _pad_char_literal(
    side: Expr, other: Expr, schema: TableSchema, join_schema: Optional[TableSchema]
):
    """If ``side`` is a CHAR column and ``other`` a str literal, pad the
    literal to the column width as NUL-padded bytes."""
    if not (isinstance(side, ColumnRef) and isinstance(other, Literal)):
        return side, other
    if not isinstance(other.value, str):
        return side, other
    for sch in (schema, join_schema):
        if sch is not None and sch.has_column(side.name):
            dtype = sch.column(side.name).dtype
            if dtype.np_dtype is None:
                padded = other.value.encode().ljust(dtype.width, b"\x00")
                return side, Literal(padded)
    return side, other
