"""Cardinality and cost estimation for access-path selection.

These estimates deliberately mirror the engines' cost recipes but run
*before* execution from catalog statistics only — they are what the
optimizer reasons with (§III-B). Tests check they rank access paths the
same way the measured ledgers do on representative queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.db.expr import Between, Compare, Expr
from repro.db.plan.binder import BoundQuery
from repro.hw.analytic import AnalyticMemoryModel
from repro.hw.config import PlatformConfig, default_platform
from repro.hw.cpu import CpuCostModel
from repro.hw.engine import RelationalMemoryEngineModel

#: Textbook default selectivities (System R heritage).
SELECTIVITY_EQ = 0.05
SELECTIVITY_RANGE = 0.33
SELECTIVITY_BETWEEN = 0.25
SELECTIVITY_OTHER = 0.5


def estimate_selectivity(expr: Optional[Expr]) -> float:
    """Rule-based selectivity of a predicate (no data statistics)."""
    if expr is None:
        return 1.0
    from repro.db.expr import And, Not, Or

    if isinstance(expr, And):
        out = 1.0
        for t in expr.terms:
            out *= estimate_selectivity(t)
        return out
    if isinstance(expr, Or):
        out = 1.0
        for t in expr.terms:
            out *= 1.0 - estimate_selectivity(t)
        return 1.0 - out
    if isinstance(expr, Not):
        return 1.0 - estimate_selectivity(expr.term)
    if isinstance(expr, Compare):
        return SELECTIVITY_EQ if expr.op == "=" else SELECTIVITY_RANGE
    if isinstance(expr, Between):
        return SELECTIVITY_BETWEEN
    return SELECTIVITY_OTHER


@dataclass(frozen=True)
class CostEstimate:
    """Estimated cycles of one access path for one query."""

    access_path: str
    cycles: float
    detail: str = ""


class CostModel:
    """Pre-execution cost estimates per access path."""

    def __init__(self, platform: Optional[PlatformConfig] = None):
        self.platform = platform or default_platform()
        self.cpu = CpuCostModel(self.platform.cpu)

    def _common(self, bound: BoundQuery, stats=None):
        table = bound.table
        n = table.nrows
        if stats is not None:
            from repro.db.stats import selectivity_with_stats

            sel = selectivity_with_stats(bound.where, stats)
        else:
            sel = estimate_selectivity(bound.where)
        q = n * sel
        widths = {
            c: table.schema.column(c).dtype.width for c in bound.referenced_columns
        }
        return table, n, sel, q, widths

    def _post_scan(self, bound: BoundQuery, q: float) -> float:
        """Grouping/aggregation work shared by every access path (mirrors
        the engines' post-scan charges)."""
        cpu = 0.0
        if bound.group_by or bound.has_aggregates:
            cpu += self.cpu.hash_probes(q)
            cpu += self.cpu.aggregate_updates(q * bound.aggregate_count)
        return cpu

    def estimate_row_scan(self, bound: BoundQuery, stats=None) -> CostEstimate:
        table, n, sel, q, widths = self._common(bound, stats)
        cfg = self.platform.cpu
        mem = AnalyticMemoryModel(self.platform)
        stream = mem.sequential(n * table.schema.row_stride)
        cpu = self.cpu.volcano_tuples(n)
        cpu += self.cpu.field_extracts(n * len(bound.selection_columns))
        cpu += self.cpu.predicates(n * bound.where_op_count)
        proj_only = [
            c for c in bound.projection_columns if c not in bound.selection_columns
        ]
        cpu += self.cpu.field_extracts(q * len(proj_only))
        cpu += q * bound.output_op_count * cfg.scalar_op_cycles
        cpu += self._post_scan(bound, q)
        cycles = max(stream.covered, cpu) + stream.exposed
        return CostEstimate("scan", cycles, f"full rows, sel~{sel:.3f}")

    def estimate_column_scan(self, bound: BoundQuery, stats=None) -> CostEstimate:
        table, n, sel, q, widths = self._common(bound, stats)
        cfg = self.platform.cpu
        mem = AnalyticMemoryModel(self.platform)
        streams = mem.multi_stream([n * w for w in widths.values()])
        cpu = self.cpu.vector_ops(2 * n)
        cpu += self.cpu.reconstructions(n * len(widths))
        cpu += self.cpu.predicates(n * bound.where_op_count)
        cpu += q * bound.output_op_count * cfg.scalar_op_cycles
        cpu += self._post_scan(bound, q)
        cycles = max(streams.covered, cpu) + streams.exposed
        return CostEstimate("column-scan", cycles, f"{len(widths)} streams")

    def estimate_ephemeral_scan(self, bound: BoundQuery, stats=None) -> CostEstimate:
        table, n, sel, q, widths = self._common(bound, stats)
        cfg = self.platform.cpu
        mem = AnalyticMemoryModel(self.platform)
        packed = sum(widths.values())
        engine = RelationalMemoryEngineModel(self.platform)
        report = engine.transform(
            nrows=n, row_stride=table.schema.row_stride, out_bytes_per_row=packed
        )
        stream = mem.sequential(n * packed)
        cpu = n * cfg.ephemeral_tuple_cycles
        cpu += n * len(bound.selection_columns) * cfg.packed_field_cycles
        cpu += q * len(bound.projection_columns) * cfg.packed_field_cycles
        cpu += self.cpu.predicates(n * bound.where_op_count)
        cpu += q * bound.output_op_count * cfg.scalar_op_cycles
        cpu += self._post_scan(bound, q)
        consume = max(stream.covered, cpu) + stream.exposed
        cycles = (
            report.configure_cycles
            + max(report.produce_cycles, consume)
            + report.refill_stall_cycles
        )
        return CostEstimate("ephemeral-scan", cycles, f"packed {packed}B/row")

    def estimate_index_probe(
        self, bound: BoundQuery, indexed_column: str
    ) -> Optional[CostEstimate]:
        """Cost of driving the query through a B+-tree on one equality
        conjunct, fetching full rows for matches; None if inapplicable."""
        from repro.db.expr import ColumnRef, Literal

        eq = None
        for conj in bound.where_conjuncts:
            if (
                isinstance(conj, Compare)
                and conj.op == "="
                and isinstance(conj.left, ColumnRef)
                and conj.left.name == indexed_column
                and isinstance(conj.right, Literal)
            ):
                eq = conj
                break
        if eq is None:
            return None
        table, n, _, _, _ = self._common(bound)
        matches = max(1.0, n * SELECTIVITY_EQ)
        mem = AnalyticMemoryModel(self.platform)
        import math

        levels = max(1, int(math.log(max(n, 2), 32)))
        probe = mem.random(levels, n * 16)
        fetch = mem.random(int(matches), n * table.schema.row_stride)
        cpu = self.cpu.predicates(int(matches) * bound.where_op_count)
        cpu += self.cpu.function_calls(levels * 8)
        cycles = probe.total + fetch.total + cpu
        return CostEstimate("index", cycles, f"eq on {indexed_column}")
