"""Logical plan trees: an explainable view of a bound query.

The engines execute :class:`~repro.db.plan.binder.BoundQuery` directly —
the plan shapes in this subset are fixed (scan → filter → [join] →
project/aggregate → sort → limit) — but an explicit tree is still useful
for EXPLAIN output, the optimizer's reasoning, and tests that assert
plan shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.db.plan.binder import BoundQuery


@dataclass(frozen=True)
class LogicalNode:
    """One operator of the logical plan."""

    kind: str
    detail: str
    children: Tuple["LogicalNode", ...] = ()

    def render(self, indent: int = 0) -> str:
        lines = [f"{'  ' * indent}{self.kind}: {self.detail}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def build_plan(query: BoundQuery, access_path: str = "scan") -> LogicalNode:
    """Build the logical tree for ``query``.

    ``access_path`` labels how the base table is read: ``"scan"`` (row),
    ``"column-scan"``, ``"ephemeral-scan"`` (fabric) or ``"index"``.
    """
    cols = ", ".join(query.referenced_columns)
    node = LogicalNode(
        kind="Scan" if access_path == "scan" else access_path.title(),
        detail=f"{query.table.schema.name}({cols})",
    )
    if query.where_main is not None:
        node = LogicalNode(
            kind="Filter", detail=str(query.where_main), children=(node,)
        )
    for join in query.joins:
        right = LogicalNode(
            kind="Scan", detail=join.table.schema.name, children=()
        )
        node = LogicalNode(
            kind="HashJoin",
            detail=f"{join.left_col} = {join.right_col}",
            children=(node, right),
        )
    if query.where_post is not None:
        node = LogicalNode(
            kind="Filter", detail=str(query.where_post), children=(node,)
        )
    if query.has_aggregates or query.group_by:
        keys = ", ".join(query.group_by) or "<all>"
        aggs = ", ".join(f"{o.kind}({o.expr})" for o in query.outputs if o.kind != "expr")
        node = LogicalNode(
            kind="Aggregate", detail=f"keys=[{keys}] aggs=[{aggs}]", children=(node,)
        )
    else:
        outs = ", ".join(o.name for o in query.outputs)
        node = LogicalNode(kind="Project", detail=outs, children=(node,))
    if query.having is not None:
        node = LogicalNode(kind="Having", detail=str(query.having), children=(node,))
    if query.distinct:
        node = LogicalNode(kind="Distinct", detail="", children=(node,))
    if query.order_by:
        keys = ", ".join(
            f"{o.expr}{' DESC' if o.descending else ''}" for o in query.order_by
        )
        node = LogicalNode(kind="Sort", detail=keys, children=(node,))
    offset = getattr(query, "offset", None)
    if query.limit is not None or offset:
        detail = "all" if query.limit is None else str(query.limit)
        if offset:
            detail += f" offset {offset}"
        node = LogicalNode(kind="Limit", detail=detail, children=(node,))
    return node


def explain(query: BoundQuery, access_path: str = "scan") -> str:
    """EXPLAIN-style rendering of the plan for ``query``."""
    return build_plan(query, access_path).render()
