"""Vectorized plan evaluation shared by every engine's answer path.

Engines differ in *how data reaches the CPU* (full rows, column copies,
or packed ephemeral lines) and in their cost recipes, but all of them
produce answers through this evaluator so results are bit-identical by
construction. The Volcano interpreter in :mod:`repro.db.exec.volcano` is
the independent reference used by tests to validate this module.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.db.expr import ColumnRef
from repro.db.plan.binder import BoundOutput, BoundQuery
from repro.db.exec.result import QueryResult
from repro.errors import ExecutionError


def apply_where(
    query: BoundQuery, columns: Dict[str, np.ndarray]
) -> Optional[np.ndarray]:
    """Evaluate the WHERE clause; returns the boolean mask or None."""
    if query.where is None:
        return None
    mask = query.where.eval_vector(columns)
    if np.isscalar(mask):
        n = len(next(iter(columns.values()))) if columns else 0
        mask = np.full(n, bool(mask))
    return mask


_AUTO = object()


def run_vector(
    query: BoundQuery, columns: Dict[str, np.ndarray], mask: object = _AUTO
) -> QueryResult:
    """Execute ``query`` over the given base columns.

    ``columns`` holds one query-facing array per referenced column of the
    main table (already restricted to visible rows). Join-side columns
    are fetched from the bound join table on demand. Engines that already
    evaluated the WHERE clause (to charge its cost) pass the boolean
    ``mask`` to avoid re-evaluation; ``None`` means "no filtering".
    """
    if mask is _AUTO:
        mask = apply_where(query, columns)
    if mask is not None:
        columns = {name: arr[mask] for name, arr in columns.items()}

    if query.join is not None:
        columns = _hash_join(query, columns)

    if query.has_aggregates or query.group_by:
        names, out = _aggregate(query, columns)
    else:
        names, out = _project(query, columns)
        # SQL permits ordering by base columns that are not selected;
        # carry them as hidden sort keys (projection is 1:1 with rows).
        for hidden in _hidden_sort_columns(query, names, columns):
            out[hidden] = columns[hidden]

    if query.having is not None:
        hmask = query.having.eval_vector(out)
        if np.isscalar(hmask):
            n = len(out[names[0]]) if names else 0
            hmask = np.full(n, bool(hmask))
        out = {name: arr[hmask] for name, arr in out.items()}

    if query.distinct:
        out = _distinct(names, out)

    if query.order_by:
        order = _sort_index(query, out)
        out = {name: arr[order] for name, arr in out.items()}
    if query.limit is not None:
        out = {name: arr[: query.limit] for name, arr in out.items()}
    out = {name: out[name] for name in names}  # drop hidden sort keys
    return QueryResult(names=names, columns=out)


# ----------------------------------------------------------------------
# Join.
# ----------------------------------------------------------------------
def _hash_join(query: BoundQuery, columns: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    join = query.join
    left_keys = columns[join.left_col]
    right_table = join.table
    right_keys = right_table.column_values(join.right_col)

    buckets: Dict[object, List[int]] = {}
    for idx, key in enumerate(right_keys.tolist()):
        buckets.setdefault(key, []).append(idx)

    left_idx: List[int] = []
    right_idx: List[int] = []
    for i, key in enumerate(left_keys.tolist()):
        for j in buckets.get(key, ()):
            left_idx.append(i)
            right_idx.append(j)
    li = np.asarray(left_idx, dtype=np.int64)
    ri = np.asarray(right_idx, dtype=np.int64)

    out = {name: arr[li] for name, arr in columns.items()}
    needed = _right_columns_needed(query)
    for name in needed:
        out[name] = right_table.column_values(name)[ri]
    return out


def _right_columns_needed(query: BoundQuery) -> Tuple[str, ...]:
    right_schema = query.join.table.schema
    wanted = set()
    for o in query.outputs:
        if o.expr is not None:
            wanted |= {c for c in o.expr.columns() if right_schema.has_column(c)}
    for o in query.order_by:
        wanted |= {c for c in o.expr.columns() if right_schema.has_column(c)}
    return tuple(sorted(wanted))


# ----------------------------------------------------------------------
# Projection and aggregation.
# ----------------------------------------------------------------------
def _project(query: BoundQuery, columns: Dict[str, np.ndarray]):
    names = tuple(o.name for o in query.outputs)
    out: Dict[str, np.ndarray] = {}
    for o in query.outputs:
        value = o.expr.eval_vector(columns)
        if np.isscalar(value):
            n = len(next(iter(columns.values()))) if columns else 0
            value = np.full(n, value)
        out[o.name] = np.asarray(value)
    return names, out


def _group_index(query: BoundQuery, columns: Dict[str, np.ndarray]):
    """Return (group key arrays in group order, inverse index, n_groups)."""
    keys = [columns[name] for name in query.group_by]
    if len(keys) == 1:
        uniq, inverse = np.unique(keys[0], return_inverse=True)
        return [uniq], inverse, len(uniq)
    # Multi-key: unique over a structured view.
    packed = np.rec.fromarrays(keys)
    uniq, inverse = np.unique(packed, return_inverse=True)
    return [np.asarray(uniq[f]) for f in uniq.dtype.names], inverse, len(uniq)


def _aggregate(query: BoundQuery, columns: Dict[str, np.ndarray]):
    names = tuple(o.name for o in query.outputs)
    n = len(next(iter(columns.values()))) if columns else 0

    if query.group_by:
        key_arrays, inverse, n_groups = _group_index(query, columns)
        key_of = dict(zip(query.group_by, key_arrays))
    else:
        inverse = np.zeros(n, dtype=np.int64)
        n_groups = 1
        key_of = {}

    out: Dict[str, np.ndarray] = {}
    for o in query.outputs:
        if o.kind == "expr":
            assert isinstance(o.expr, ColumnRef)  # enforced by the binder
            out[o.name] = key_of[o.expr.name]
            continue
        out[o.name] = _compute_aggregate(o, columns, inverse, n_groups, n)
    # An empty input with no GROUP BY still yields one row (SQL semantics
    # for global aggregates).
    return names, out


def _compute_aggregate(
    output: BoundOutput,
    columns: Dict[str, np.ndarray],
    inverse: np.ndarray,
    n_groups: int,
    n: int,
) -> np.ndarray:
    if output.kind == "count":
        return np.bincount(inverse, minlength=n_groups).astype(np.int64)
    values = np.asarray(output.expr.eval_vector(columns), dtype=np.float64)
    if values.ndim == 0:
        # Constant aggregate argument (e.g. sum(42)): broadcast per row.
        values = np.full(n, float(values))
    if output.kind == "sum":
        return np.bincount(inverse, weights=values, minlength=n_groups)
    if output.kind == "avg":
        sums = np.bincount(inverse, weights=values, minlength=n_groups)
        counts = np.bincount(inverse, minlength=n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if output.kind == "min":
        acc = np.full(n_groups, np.inf)
        np.minimum.at(acc, inverse, values)
        return acc
    if output.kind == "max":
        acc = np.full(n_groups, -np.inf)
        np.maximum.at(acc, inverse, values)
        return acc
    raise ExecutionError(f"unknown aggregate {output.kind!r}")


def _hidden_sort_columns(query, names, columns) -> Tuple[str, ...]:
    """Base columns the ORDER BY needs that the SELECT list did not keep.

    With DISTINCT they cannot be carried (deduplication would change),
    which matches SQL: ``SELECT DISTINCT`` may only order by selected
    expressions.
    """
    if not query.order_by or query.distinct:
        return ()
    hidden = []
    name_set = set(names)
    for item in query.order_by:
        for col in item.expr.columns():
            if col not in name_set and col in columns and col not in hidden:
                hidden.append(col)
    return tuple(hidden)


def _distinct(names, out: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Row-wise deduplication; rows come back in lexicographic order of
    the output columns (np.unique semantics, matched by the Volcano
    reference)."""
    if not names:
        return out
    if len(names) == 1:
        uniq = np.unique(out[names[0]])
        return {names[0]: uniq}
    packed = np.rec.fromarrays([out[n] for n in names], names=list(names))
    uniq = np.unique(packed)
    return {n: np.asarray(uniq[n]) for n in names}


# ----------------------------------------------------------------------
# Ordering.
# ----------------------------------------------------------------------
def _sort_index(query: BoundQuery, out: Dict[str, np.ndarray]) -> np.ndarray:
    """Stable multi-key sort honoring per-key direction."""
    keys = []
    for item in reversed(query.order_by):
        values = item.expr.eval_vector(out)
        values = np.asarray(values)
        if item.descending:
            # Rank-based negation works for any dtype, including bytes.
            _, ranks = np.unique(values, return_inverse=True)
            values = -ranks
        keys.append(values)
    return np.lexsort(keys)
