"""Vectorized plan evaluation shared by every engine's answer path.

Engines differ in *how data reaches the CPU* (full rows, column copies,
or packed ephemeral lines) and in their cost recipes, but all of them
produce answers through this evaluator so results are bit-identical by
construction. The Volcano interpreter in :mod:`repro.db.exec.volcano` is
the independent reference used by tests to validate this module.

Execution is organized as a :class:`FusedKernel`: the query shape is
compiled once into a chain of closures (filter -> join* -> post-join
filter -> aggregate/project -> having -> distinct -> sort -> limit) with
all per-shape decisions — join column sets, hidden sort keys, join
strategy — resolved at compile time. ``CodeFragmentCache`` stores these
kernels keyed by ``fragment_signature`` so repeated query shapes skip
compilation entirely.

Join kernels are pure numpy: the build side is factorized and stably
argsorted, probes run through ``searchsorted`` ranges, and matches are
expanded CSR-style with ``repeat``/``cumsum``. Both the hash-style probe
and the sort-merge fallback (chosen for high-collision keys) reproduce
the Volcano nested-bucket output order exactly: left rows ascending,
and within one left row the matching right rows in table order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.expr import ColumnRef
from repro.db.plan.binder import BoundJoin, BoundOutput, BoundQuery
from repro.db.exec.result import QueryResult
from repro.errors import ExecutionError

#: Average right-side duplication above which the sort-merge expansion
#: replaces the per-probe binary search (sorted probes walk the build
#: side with far better locality once buckets get long).
MERGE_FANOUT_THRESHOLD = 16


def apply_where(
    query: BoundQuery, columns: Dict[str, np.ndarray]
) -> Optional[np.ndarray]:
    """Evaluate the pre-join WHERE conjuncts; boolean mask or None.

    Conjuncts that reference joined-table columns are excluded here (the
    scan only has main-table columns) and applied after the join chain
    via ``query.where_post``.
    """
    if query.where_main is None:
        return None
    mask = query.where_main.eval_vector(columns)
    if np.isscalar(mask):
        n = len(next(iter(columns.values()))) if columns else 0
        mask = np.full(n, bool(mask))
    return mask


_AUTO = object()


def run_vector(
    query: BoundQuery, columns: Dict[str, np.ndarray], mask: object = _AUTO
) -> QueryResult:
    """Execute ``query`` over the given base columns.

    ``columns`` holds one query-facing array per referenced column of the
    main table (already restricted to visible rows). Join-side columns
    are fetched from the bound join tables on demand. Engines that
    already evaluated the WHERE clause (to charge its cost) pass the
    boolean ``mask`` to avoid re-evaluation; ``None`` means "no
    filtering". One-shot path: compiles a :class:`FusedKernel` and runs
    it; engines with a code cache reuse compiled kernels instead.
    """
    return FusedKernel(query)(columns, mask=mask)


# ----------------------------------------------------------------------
# Fused kernel compilation.
# ----------------------------------------------------------------------
class _JoinSpec:
    """Per-join compile-time plan: which right columns to materialize."""

    __slots__ = ("left_col", "table", "right_col", "right_cols", "strategy")

    def __init__(self, join: BoundJoin, right_cols: Tuple[str, ...], strategy: str):
        self.left_col = join.left_col
        self.table = join.table
        self.right_col = join.right_col
        self.right_cols = right_cols
        self.strategy = strategy


class FusedKernel:
    """A query shape compiled to a chain of vectorized stages.

    Instances are pure functions of (columns, mask) — they hold no row
    data, only the bound query and per-stage decisions — so they are
    safe to cache and replay for every execution of the same shape.
    """

    __slots__ = ("query", "_joins", "_hidden", "_names")

    def __init__(self, query: BoundQuery, join_strategy: str = "auto"):
        self.query = query
        self._joins = _compile_joins(query, join_strategy)
        self._names = tuple(o.name for o in query.outputs)
        self._hidden = _hidden_sort_columns(query, self._names)

    def __call__(
        self, columns: Dict[str, np.ndarray], mask: object = _AUTO
    ) -> QueryResult:
        query = self.query
        if mask is _AUTO:
            mask = apply_where(query, columns)
        if mask is not None:
            columns = {name: arr[mask] for name, arr in columns.items()}

        for spec in self._joins:
            columns = _join_step(spec, columns)
        if query.where_post is not None:
            pmask = _as_mask(query.where_post.eval_vector(columns), columns)
            columns = {name: arr[pmask] for name, arr in columns.items()}

        names = self._names
        if query.has_aggregates or query.group_by:
            out = _aggregate(query, columns)
        else:
            out = _project(query, columns)
            # SQL permits ordering by base columns that are not selected;
            # carry them as hidden sort keys (projection is 1:1 with rows).
            for hidden in self._hidden:
                out[hidden] = columns[hidden]

        if query.having is not None:
            hmask = _as_mask(query.having.eval_vector(out), out)
            out = {name: arr[hmask] for name, arr in out.items()}

        if query.distinct:
            out = _distinct(names, out)

        if query.order_by:
            order = _sort_index(query, out)
            out = {name: arr[order] for name, arr in out.items()}
        skip = getattr(query, "offset", None) or 0
        if query.limit is not None or skip:
            stop = None if query.limit is None else skip + query.limit
            out = {name: arr[skip:stop] for name, arr in out.items()}
        out = {name: out[name] for name in names}  # drop hidden sort keys
        return QueryResult(names=names, columns=out)


def compile_kernel(query: BoundQuery, join_strategy: str = "auto") -> FusedKernel:
    """Compile ``query`` into a reusable fused kernel chain."""
    return FusedKernel(query, join_strategy=join_strategy)


def _as_mask(mask, columns: Dict[str, np.ndarray]) -> np.ndarray:
    if np.isscalar(mask):
        n = len(next(iter(columns.values()))) if columns else 0
        return np.full(n, bool(mask))
    return mask


def _compile_joins(query: BoundQuery, strategy: str) -> Tuple[_JoinSpec, ...]:
    specs: List[_JoinSpec] = []
    for i, join in enumerate(query.joins):
        right_cols = _right_columns_needed(query, i)
        specs.append(_JoinSpec(join, right_cols, strategy))
    return tuple(specs)


def _right_columns_needed(query: BoundQuery, index: int) -> Tuple[str, ...]:
    """Columns of join ``index``'s table that later stages consume."""
    right_schema = query.joins[index].table.schema
    wanted = set()
    for o in query.outputs:
        if o.expr is not None:
            wanted |= set(o.expr.columns())
    for o in query.order_by:
        wanted |= set(o.expr.columns())
    wanted |= set(query.group_by)
    if query.having is not None:
        wanted |= set(query.having.columns())
    if query.where_post is not None:
        wanted |= set(query.where_post.columns())
    # Probe keys of downstream joins may live in this table.
    for later in query.joins[index + 1 :]:
        wanted.add(later.left_col)
    return tuple(sorted(c for c in wanted if right_schema.has_column(c)))


# ----------------------------------------------------------------------
# Join kernels.
# ----------------------------------------------------------------------
def _join_step(spec: _JoinSpec, columns: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    left_keys = columns[spec.left_col]
    right_keys = spec.table.column_values(spec.right_col)
    li, ri = join_indices([left_keys], [right_keys], strategy=spec.strategy)
    out = {name: arr[li] for name, arr in columns.items()}
    for name in spec.right_cols:
        out[name] = spec.table.column_values(name)[ri]
    return out


def join_indices(
    left_keys: Sequence[np.ndarray],
    right_keys: Sequence[np.ndarray],
    strategy: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized equi-join: return (left index, right index) match pairs.

    Accepts one array per key column (multi-key joins factorize the key
    tuples first). Output order is the Volcano reference order: pairs
    sorted by left index, and within one left index by right index —
    i.e. exactly what a dict-of-buckets build + in-order probe yields.

    ``strategy`` is ``"probe"`` (binary-search each probe key against
    the sorted build side), ``"merge"`` (sort the probe side too and
    expand run-against-run — wins when build keys repeat heavily), or
    ``"auto"`` to pick by the observed build-side fanout. Both
    strategies are bit-identical by construction.
    """
    lcodes, rcodes = _join_codes(left_keys, right_keys)
    order = np.argsort(rcodes, kind="stable")
    sorted_r = rcodes[order]
    if strategy == "auto":
        strategy = _pick_strategy(sorted_r, len(lcodes))
    if strategy == "probe":
        lo = np.searchsorted(sorted_r, lcodes, side="left")
        hi = np.searchsorted(sorted_r, lcodes, side="right")
        return _expand_matches(lo, hi, order)
    if strategy != "merge":
        raise ExecutionError(f"unknown join strategy {strategy!r}")
    # Sort-merge fallback: probe in sorted order, then un-permute. The
    # stable final argsort restores ascending-left / ascending-right
    # pair order, so the output matches the probe path bit for bit.
    lorder = np.argsort(lcodes, kind="stable")
    sorted_l = lcodes[lorder]
    lo = np.searchsorted(sorted_r, sorted_l, side="left")
    hi = np.searchsorted(sorted_r, sorted_l, side="right")
    li, ri = _expand_matches(lo, hi, order)
    li = lorder[li]
    restore = np.argsort(li, kind="stable")
    return li[restore], ri[restore]


def _join_codes(
    left_keys: Sequence[np.ndarray], right_keys: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce (possibly multi-column) join keys to one sortable code per
    row, consistent across both sides."""
    n_left = len(left_keys[0])
    if len(left_keys) == 1:
        left, right = left_keys[0], right_keys[0]
        if left.dtype == right.dtype:
            return left, right
        both = np.concatenate([left, right])  # promote to a common dtype
        return both[:n_left], both[n_left:]
    # Multi-key: factorize the key tuples over both sides at once so the
    # integer codes agree.
    cols = [np.concatenate([l, r]) for l, r in zip(left_keys, right_keys)]
    packed = np.rec.fromarrays(cols)
    _, inverse = np.unique(packed, return_inverse=True)
    inverse = inverse.reshape(-1)
    return inverse[:n_left], inverse[n_left:]


def _pick_strategy(sorted_r: np.ndarray, n_left: int) -> str:
    if len(sorted_r) == 0 or n_left == 0:
        return "probe"
    uniques = 1 + int(np.count_nonzero(sorted_r[1:] != sorted_r[:-1]))
    fanout = len(sorted_r) / uniques
    return "merge" if fanout >= MERGE_FANOUT_THRESHOLD else "probe"


def _expand_matches(
    lo: np.ndarray, hi: np.ndarray, order: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-style expansion of per-probe match ranges into index pairs."""
    counts = hi - lo
    total = int(counts.sum())
    li = np.repeat(np.arange(len(lo), dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    # Position of each output pair inside its probe's run, shifted to the
    # run's offset in the sorted build side.
    slot = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    slot += np.repeat(lo, counts)
    return li, order[slot]


# ----------------------------------------------------------------------
# Projection and aggregation.
# ----------------------------------------------------------------------
def _project(query: BoundQuery, columns: Dict[str, np.ndarray]):
    out: Dict[str, np.ndarray] = {}
    for o in query.outputs:
        value = o.expr.eval_vector(columns)
        if np.isscalar(value):
            n = len(next(iter(columns.values()))) if columns else 0
            value = np.full(n, value)
        out[o.name] = np.asarray(value)
    return out


def _group_index(query: BoundQuery, columns: Dict[str, np.ndarray]):
    """Return (group key arrays in group order, inverse index, n_groups)."""
    keys = [columns[name] for name in query.group_by]
    if len(keys) == 1:
        uniq, inverse = np.unique(keys[0], return_inverse=True)
        return [uniq], inverse, len(uniq)
    # Multi-key: unique over a structured view.
    packed = np.rec.fromarrays(keys)
    uniq, inverse = np.unique(packed, return_inverse=True)
    return [np.asarray(uniq[f]) for f in uniq.dtype.names], inverse, len(uniq)


def _aggregate(query: BoundQuery, columns: Dict[str, np.ndarray]):
    n = len(next(iter(columns.values()))) if columns else 0

    if query.group_by:
        key_arrays, inverse, n_groups = _group_index(query, columns)
        key_of = dict(zip(query.group_by, key_arrays))
    else:
        inverse = np.zeros(n, dtype=np.int64)
        n_groups = 1
        key_of = {}

    out: Dict[str, np.ndarray] = {}
    for o in query.outputs:
        if o.kind == "expr":
            assert isinstance(o.expr, ColumnRef)  # enforced by the binder
            out[o.name] = key_of[o.expr.name]
            continue
        out[o.name] = _compute_aggregate(o, columns, inverse, n_groups, n)
    # An empty input with no GROUP BY still yields one row (SQL semantics
    # for global aggregates).
    return out


def _compute_aggregate(
    output: BoundOutput,
    columns: Dict[str, np.ndarray],
    inverse: np.ndarray,
    n_groups: int,
    n: int,
) -> np.ndarray:
    """One aggregate column over factorized groups.

    Empty-input contract (pinned by tests against the Volcano reference):
    a global aggregate over zero rows yields COUNT=0, SUM=0.0, AVG=NaN,
    MIN=+inf, MAX=-inf — the accumulator identities. Empty *groups*
    cannot occur: factorization only emits groups with at least one row.
    """
    if output.kind == "count":
        return np.bincount(inverse, minlength=n_groups).astype(np.int64)
    values = np.asarray(output.expr.eval_vector(columns), dtype=np.float64)
    if values.ndim == 0:
        # Constant aggregate argument (e.g. sum(42)): broadcast per row.
        values = np.full(n, float(values))
    if n == 0:
        if output.kind == "sum":
            return np.zeros(n_groups)
        if output.kind == "avg":
            return np.full(n_groups, np.nan)
        if output.kind == "min":
            return np.full(n_groups, np.inf)
        if output.kind == "max":
            return np.full(n_groups, -np.inf)
    if output.kind == "sum":
        return np.bincount(inverse, weights=values, minlength=n_groups)
    if output.kind == "avg":
        sums = np.bincount(inverse, weights=values, minlength=n_groups)
        counts = np.bincount(inverse, minlength=n_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if output.kind in ("min", "max"):
        # Segment the values by group and reduce each run: reduceat is an
        # order-of-magnitude faster than ufunc.at, and min/max are
        # order-independent so the result is exact either way.
        order = np.argsort(inverse, kind="stable")
        boundaries = np.searchsorted(inverse[order], np.arange(n_groups), side="left")
        ufunc = np.minimum if output.kind == "min" else np.maximum
        return ufunc.reduceat(values[order], boundaries)
    raise ExecutionError(f"unknown aggregate {output.kind!r}")


def _hidden_sort_columns(query: BoundQuery, names) -> Tuple[str, ...]:
    """Base columns the ORDER BY needs that the SELECT list did not keep.

    With DISTINCT they cannot be carried (deduplication would change),
    which matches SQL: ``SELECT DISTINCT`` may only order by selected
    expressions. Availability spans the main table and every joined
    table — the join stages materialize any ORDER BY column they own.
    """
    if not query.order_by or query.distinct:
        return ()
    schemas = (query.table.schema, *(j.table.schema for j in query.joins))
    hidden = []
    name_set = set(names)
    for item in query.order_by:
        for col in item.expr.columns():
            if (
                col not in name_set
                and col not in hidden
                and any(s.has_column(col) for s in schemas)
            ):
                hidden.append(col)
    return tuple(hidden)


def _distinct(names, out: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Row-wise deduplication; rows come back in lexicographic order of
    the output columns (np.unique semantics, matched by the Volcano
    reference)."""
    if not names:
        return out
    if len(names) == 1:
        uniq = np.unique(out[names[0]])
        return {names[0]: uniq}
    packed = np.rec.fromarrays([out[n] for n in names], names=list(names))
    uniq = np.unique(packed)
    return {n: np.asarray(uniq[n]) for n in names}


# ----------------------------------------------------------------------
# Ordering.
# ----------------------------------------------------------------------
def _sort_index(query: BoundQuery, out: Dict[str, np.ndarray]) -> np.ndarray:
    """Stable multi-key sort honoring per-key direction."""
    keys = []
    for item in reversed(query.order_by):
        values = item.expr.eval_vector(out)
        values = np.asarray(values)
        if item.descending:
            # Rank-based negation works for any dtype, including bytes.
            _, ranks = np.unique(values, return_inverse=True)
            values = -ranks
        keys.append(values)
    return np.lexsort(keys)
