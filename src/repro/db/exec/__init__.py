"""Executors: the shared vectorized evaluator and the Volcano reference."""

from repro.db.exec.result import QueryResult, results_equal
from repro.db.exec.vector import apply_where, run_vector
from repro.db.exec.volcano import run_volcano

__all__ = [
    "QueryResult",
    "apply_where",
    "results_equal",
    "run_vector",
    "run_volcano",
]
