"""A genuine Volcano (tuple-at-a-time) interpreter.

This is both the row engine's *execution model* (each tuple climbs an
iterator chain through ``next()`` calls — the per-tuple overhead the cost
model charges) and the independent **reference executor**: tests run the
same bound query through this interpreter and through the vectorized
evaluator and require identical answers.

It is deliberately straightforward Python — clarity over speed — and is
only used on small inputs.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.db.expr import ColumnRef
from repro.db.plan.binder import BoundQuery
from repro.db.exec.result import QueryResult
from repro.errors import ExecutionError

Row = Dict[str, Any]


class VolcanoIterator:
    """Base iterator: ``open() / __iter__ / close()``."""

    def open(self) -> None:  # pragma: no cover - trivial
        pass

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError


class ScanNode(VolcanoIterator):
    """Emit each base row as a dict of the referenced columns."""

    def __init__(self, columns: Dict[str, np.ndarray]):
        self._columns = {k: v for k, v in columns.items()}
        self._n = len(next(iter(columns.values()))) if columns else 0

    def __iter__(self) -> Iterator[Row]:
        names = list(self._columns)
        arrays = [self._columns[n] for n in names]
        for i in range(self._n):
            yield {name: arr[i] for name, arr in zip(names, arrays)}


class FilterNode(VolcanoIterator):
    def __init__(self, child: VolcanoIterator, predicate):
        self._child = child
        self._predicate = predicate

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            if self._predicate.eval_row(row):
                yield row


class JoinNode(VolcanoIterator):
    """Hash join: build on the right child, probe with the left."""

    def __init__(self, left: VolcanoIterator, right: VolcanoIterator, left_col, right_col):
        self._left = left
        self._right = right
        self._left_col = left_col
        self._right_col = right_col

    def __iter__(self) -> Iterator[Row]:
        buckets: Dict[Any, List[Row]] = {}
        for row in self._right:
            buckets.setdefault(row[self._right_col], []).append(row)
        for row in self._left:
            for match in buckets.get(row[self._left_col], ()):
                merged = dict(row)
                merged.update(match)
                yield merged


class ProjectNode(VolcanoIterator):
    def __init__(self, child: VolcanoIterator, outputs, carry: Tuple[str, ...] = ()):
        self._child = child
        self._outputs = outputs
        #: Base columns carried through for downstream sorting (hidden
        #: ORDER BY keys that are not in the select list).
        self._carry = carry

    def __iter__(self) -> Iterator[Row]:
        for row in self._child:
            out = {o.name: o.expr.eval_row(row) for o in self._outputs}
            for name in self._carry:
                if name not in out:
                    out[name] = row[name]
            yield out


class AggregateNode(VolcanoIterator):
    """Blocking hash aggregation (grouped or global)."""

    def __init__(self, child: VolcanoIterator, outputs, group_by: Tuple[str, ...]):
        self._child = child
        self._outputs = outputs
        self._group_by = group_by

    def __iter__(self) -> Iterator[Row]:
        groups: Dict[Tuple, Dict[str, Any]] = {}
        order: List[Tuple] = []
        for row in self._child:
            key = tuple(row[g] for g in self._group_by)
            state = groups.get(key)
            if state is None:
                state = {}
                for o in self._outputs:
                    if o.kind == "expr":
                        continue
                    state[o.name] = {"sum": 0.0, "count": 0, "min": None, "max": None}
                groups[key] = state
                order.append(key)
            for o in self._outputs:
                if o.kind == "expr":
                    continue
                acc = state[o.name]
                acc["count"] += 1
                if o.expr is not None:
                    v = float(o.expr.eval_row(row))
                    acc["sum"] += v
                    acc["min"] = v if acc["min"] is None else min(acc["min"], v)
                    acc["max"] = v if acc["max"] is None else max(acc["max"], v)

        if not groups and not self._group_by:
            groups[()] = {
                o.name: {"sum": 0.0, "count": 0, "min": None, "max": None}
                for o in self._outputs
                if o.kind != "expr"
            }
            order.append(())

        # Deterministic group order: sorted by key (matches np.unique).
        for key in sorted(order):
            state = groups[key]
            out: Row = {}
            for o in self._outputs:
                if o.kind == "expr":
                    assert isinstance(o.expr, ColumnRef)
                    out[o.name] = key[self._group_by.index(o.expr.name)]
                    continue
                acc = state[o.name]
                if o.kind == "count":
                    out[o.name] = acc["count"]
                elif o.kind == "sum":
                    out[o.name] = acc["sum"]
                elif o.kind == "avg":
                    out[o.name] = acc["sum"] / acc["count"] if acc["count"] else float("nan")
                elif o.kind == "min":
                    out[o.name] = float("inf") if acc["min"] is None else acc["min"]
                elif o.kind == "max":
                    out[o.name] = float("-inf") if acc["max"] is None else acc["max"]
                else:
                    raise ExecutionError(f"unknown aggregate {o.kind!r}")
            yield out


class DistinctNode(VolcanoIterator):
    """Blocking duplicate elimination; emits rows in lexicographic order
    of the output columns to match the vectorized executor."""

    def __init__(self, child: VolcanoIterator, names: Tuple[str, ...]):
        self._child = child
        self._names = names

    def __iter__(self) -> Iterator[Row]:
        seen = {}
        for row in self._child:
            key = tuple(row[n] for n in self._names)
            seen.setdefault(key, row)
        for key in sorted(seen):
            yield seen[key]


class SortNode(VolcanoIterator):
    """Blocking sort with per-key direction (stable)."""

    def __init__(self, child: VolcanoIterator, order_by):
        self._child = child
        self._order_by = order_by

    def __iter__(self) -> Iterator[Row]:
        rows = list(self._child)
        for item in reversed(self._order_by):
            rows.sort(key=lambda r: item.expr.eval_row(r), reverse=item.descending)
        return iter(rows)


class LimitNode(VolcanoIterator):
    """OFFSET/LIMIT: skip ``offset`` rows, then emit at most ``limit``."""

    def __init__(self, child: VolcanoIterator, limit: "int | None", offset: int = 0):
        self._child = child
        self._limit = limit
        self._offset = offset

    def __iter__(self) -> Iterator[Row]:
        stop = None if self._limit is None else self._offset + self._limit
        for i, row in enumerate(self._child):
            if stop is not None and i >= stop:
                return
            if i >= self._offset:
                yield row


def run_volcano(query: BoundQuery, columns: Dict[str, np.ndarray]) -> QueryResult:
    """Execute ``query`` tuple-at-a-time over the given base columns."""
    node: VolcanoIterator = ScanNode(columns)
    if query.where_main is not None:
        node = FilterNode(node, query.where_main)
    for join in query.joins:
        right_cols = {
            name: join.table.column_values(name)
            for name in join.table.schema.column_names
        }
        node = JoinNode(node, ScanNode(right_cols), join.left_col, join.right_col)
    if query.where_post is not None:
        # WHERE conjuncts over joined columns run after the join chain.
        node = FilterNode(node, query.where_post)
    if query.has_aggregates or query.group_by:
        node = AggregateNode(node, query.outputs, query.group_by)
    else:
        from repro.db.exec.vector import _hidden_sort_columns

        hidden = _hidden_sort_columns(query, tuple(o.name for o in query.outputs))
        node = ProjectNode(node, query.outputs, carry=hidden)
    if query.having is not None:
        node = FilterNode(node, query.having)
    if query.distinct:
        node = DistinctNode(node, tuple(o.name for o in query.outputs))
    if query.order_by:
        node = SortNode(node, query.order_by)
    offset = getattr(query, "offset", None) or 0
    if query.limit is not None or offset:
        node = LimitNode(node, query.limit, offset)

    # Fixed-width CHAR columns: tuple extraction strips trailing NULs, so
    # re-inferring a dtype from collected scalars would shrink the width
    # (``S8`` base, ``b"oak"`` values → ``S3``). Record each base CHAR
    # width so output columns keep the exact dtype the vectorized path
    # produces.
    char_widths: Dict[str, int] = {
        name: arr.dtype.itemsize
        for name, arr in columns.items()
        if arr.dtype.kind == "S"
    }
    for join in query.joins:
        for cname in join.table.schema.column_names:
            width = join.table.schema.column(cname).dtype.width
            if join.table.schema.column(cname).dtype.np_dtype is None:
                char_widths[cname] = width

    names = tuple(o.name for o in query.outputs)
    collected: Dict[str, List[Any]] = {n: [] for n in names}
    for row in node:
        for n in names:
            collected[n].append(row[n])
    arrays: Dict[str, np.ndarray] = {}
    empty_ns: Optional[Dict[str, np.ndarray]] = None
    for n, v in collected.items():
        if v:
            arr = np.asarray(v)
            if arr.dtype.kind == "S":
                out = next(o for o in query.outputs if o.name == n)
                if isinstance(out.expr, ColumnRef):
                    width = char_widths.get(out.expr.name)
                    if width:
                        arr = arr.astype(f"S{width}")
            arrays[n] = arr
            continue
        # Zero result rows: ``np.asarray([])`` would default to float64,
        # so derive each dtype the way the vectorized path does — count
        # is int64, other aggregates accumulate in float64, and plain
        # expressions follow numpy promotion over zero-row inputs.
        out = next(o for o in query.outputs if o.name == n)
        if out.kind == "count":
            arrays[n] = np.empty(0, dtype=np.int64)
        elif out.kind != "expr":
            arrays[n] = np.empty(0, dtype=np.float64)
        else:
            if empty_ns is None:
                empty_ns = {name: arr[:0] for name, arr in columns.items()}
                for join in query.joins:
                    for name in join.table.schema.column_names:
                        empty_ns[name] = join.table.column_values(name)[:0]
            arr = np.asarray(out.expr.eval_vector(empty_ns))
            if arr.ndim == 0:
                # Constant outputs (e.g. folded scalar subqueries)
                # evaluate to a 0-d scalar; the result column is an
                # empty array of that scalar's dtype.
                arr = arr.reshape(1)[:0]
            arrays[n] = arr
    return QueryResult(names=names, columns=arrays)
