"""Query results: ordered named columns with row-wise conveniences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.errors import ExecutionError


@dataclass
class QueryResult:
    """Columnar query output, ordered as the select list."""

    names: Tuple[str, ...]
    columns: Dict[str, np.ndarray]

    def __post_init__(self):
        lengths = {len(self.columns[n]) for n in self.names}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged result: lengths {sorted(lengths)}")

    @property
    def nrows(self) -> int:
        if not self.names:
            return 0
        return len(self.columns[self.names[0]])

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise ExecutionError(f"result has no column {name!r}")
        return self.columns[name]

    def rows(self) -> List[Tuple[Any, ...]]:
        """Rows as Python tuples (bytes decoded to str for readability)."""
        out = []
        cols = [self.columns[n] for n in self.names]
        for i in range(self.nrows):
            row = []
            for col in cols:
                v = col[i]
                if isinstance(v, (bytes, np.bytes_)):
                    v = bytes(v).rstrip(b"\x00").decode(errors="replace")
                elif isinstance(v, np.integer):
                    v = int(v)
                elif isinstance(v, np.floating):
                    v = float(v)
                row.append(v)
            out.append(tuple(row))
        return out

    def scalar(self) -> Any:
        """The single value of a 1×1 result."""
        if self.nrows != 1 or len(self.names) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, have {self.nrows}x{len(self.names)}"
            )
        return self.rows()[0][0]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.names, row)) for row in self.rows()]


def results_equal(a: QueryResult, b: QueryResult, tol: float = 1e-6) -> bool:
    """Order-sensitive comparison with float tolerance (tests use this to
    check that every engine computes identical answers)."""
    if a.names != b.names or a.nrows != b.nrows:
        return False
    for name in a.names:
        ca, cb = a.columns[name], b.columns[name]
        if ca.dtype.kind == "f" or cb.dtype.kind == "f":
            if not np.allclose(
                ca.astype(np.float64),
                cb.astype(np.float64),
                rtol=tol,
                atol=tol,
                equal_nan=True,  # avg() over an empty group is NaN on both sides
            ):
                return False
        else:
            if not np.array_equal(ca, cb):
                return False
    return True
