"""Database substrate: types, schemas, row tables, SQL, planning, the
three engines, MVCC transactions, indexing, compression, and the physical
design advisor."""

from repro.db.catalog import Catalog
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import (
    BOOL,
    CHAR,
    DATE,
    DECIMAL,
    FLOAT32,
    FLOAT64,
    INT8,
    INT16,
    INT32,
    INT64,
    TIMESTAMP,
    DataType,
    parse_type,
)

__all__ = [
    "BOOL",
    "CHAR",
    "Catalog",
    "Column",
    "DATE",
    "DECIMAL",
    "DataType",
    "FLOAT32",
    "FLOAT64",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "TIMESTAMP",
    "Table",
    "TableSchema",
    "parse_type",
]
