"""Relational Storage: the fabric inside a computational SSD (§IV-D).

"RS can be directly implemented in a specialized storage device ... In
contrast to RM, it is possible to push other operators like selection
and aggregation by utilizing the processing capabilities of in-storage
custom logic."

The device reads the row pages internally (exploiting channel/die
parallelism), runs projection + selection (+ optional aggregation) in
the in-storage engine, and ships **only the packed result** over the
host link — the same ephemeral-columns abstraction as Relational
Memory, implementing the shared :class:`~repro.core.fabric.RelationalFabric`
interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.ephemeral import Visibility
from repro.core.fabric import RelationalFabric
from repro.core.geometry import DataGeometry
from repro.core.mvcc_filter import visible_mask
from repro.core.packer import pack
from repro.core.selection import FabricAggregate, FabricFilter
from repro.obs import Tracer, maybe_span
from repro.storage.flash import FlashDevice
from repro.storage.ssd import ReadReport, SsdTable
from repro.errors import StorageError


@dataclass
class StorageReport(ReadReport):
    """A device read plus the in-storage transformation accounting."""

    engine_us: float = 0.0
    rows_emitted: int = 0
    #: Host bytes a legacy scan of the same data would have moved.
    baseline_host_bytes: int = 0

    @property
    def total_us(self) -> float:
        # Array reads, the in-storage engine and the host link form a
        # pipeline; the slowest stage dominates.
        return max(self.device_us, self.engine_us, self.link_us)

    @property
    def host_bytes_saved(self) -> int:
        return self.baseline_host_bytes - self.host_bytes


class StorageEphemeralGroup:
    """The host's view of an in-storage ephemeral column group."""

    def __init__(self, packed: np.ndarray, geometry: DataGeometry, report: StorageReport):
        self._packed = packed
        self.geometry = geometry
        self.report = report

    @property
    def packed(self) -> np.ndarray:
        return self._packed

    @property
    def length(self) -> int:
        return self._packed.shape[0]

    def __len__(self) -> int:
        return self.length

    def column(self, name: str) -> np.ndarray:
        from repro.core.packer import decode_field

        return decode_field(self._packed, self.geometry, name)


class RelationalStorage(RelationalFabric):
    """Ephemeral column groups served from inside the SSD."""

    def __init__(self, ssd_table: SsdTable, tracer: Optional[Tracer] = None):
        self.ssd = ssd_table
        self.flash: FlashDevice = ssd_table.flash
        #: Observability hook: pushdown/aggregate reads open spans here.
        #: Storage spans tick in device microseconds, not CPU cycles.
        self.tracer = tracer

    def configure(
        self,
        frame: np.ndarray,
        geometry: DataGeometry,
        base_geometry: Optional[DataGeometry] = None,
        fabric_filter: Optional[FabricFilter] = None,
        visibility: Optional[Visibility] = None,
    ) -> StorageEphemeralGroup:
        """Run one in-storage transformation and return the host view."""
        table = self.ssd.table
        if frame.shape[0] != table.nrows:
            raise StorageError("frame does not match the device-resident table")
        base_geometry = base_geometry or geometry

        with maybe_span(
            self.tracer,
            "storage.pushdown",
            layer="storage",
            columns=",".join(geometry.field_names),
            rows_in=table.nrows,
        ) as span:
            mask = None
            if visibility is not None:
                mask = visible_mask(
                    visibility.begin_ts, visibility.end_ts, visibility.snapshot_ts
                )
            if fabric_filter is not None:
                fmask = fabric_filter.evaluate(frame, base_geometry)
                mask = fmask if mask is None else (mask & fmask)

            packed = pack(frame, geometry, row_mask=mask)
            report = self._price(packed.shape[0], geometry)
            span.set_attrs(rows_out=packed.shape[0])
            span.add_counters(
                {
                    "device_us": report.device_us,
                    "engine_us": report.engine_us,
                    "link_us": report.link_us,
                    "host_bytes": report.host_bytes,
                }
            )
            span.set_duration(report.total_us)
        return StorageEphemeralGroup(packed=packed, geometry=geometry, report=report)

    def aggregate(
        self,
        geometry: DataGeometry,
        aggregate: FabricAggregate,
        fabric_filter: Optional[FabricFilter] = None,
    ):
        """§IV-B taken to storage: ship only the aggregation result."""
        table = self.ssd.table
        frame = table.frame
        with maybe_span(
            self.tracer,
            "storage.aggregate",
            layer="storage",
            rows_in=table.nrows,
            rows_out=1,
        ) as span:
            mask = (
                fabric_filter.evaluate(frame, geometry)
                if fabric_filter is not None
                else None
            )
            value = aggregate.evaluate(frame, geometry, mask=mask)
            report = self._price(0, geometry, result_bytes=8)
            span.add_counters(
                {
                    "device_us": report.device_us,
                    "engine_us": report.engine_us,
                    "link_us": report.link_us,
                    "host_bytes": report.host_bytes,
                }
            )
            span.set_duration(report.total_us)
        return value, report

    def _price(
        self, rows_emitted: int, geometry: DataGeometry, result_bytes: Optional[int] = None
    ) -> StorageReport:
        pages = self.ssd.total_pages
        device_us = self.flash.read_pages_us(pages)
        scanned_bytes = pages * self.flash.config.page_bytes
        engine_us = self.flash.engine_us(scanned_bytes)
        host_bytes = (
            result_bytes
            if result_bytes is not None
            else rows_emitted * geometry.packed_width
        )
        return StorageReport(
            pages_read=pages,
            device_us=device_us,
            link_us=self.flash.host_transfer_us(host_bytes),
            host_bytes=host_bytes,
            engine_us=engine_us,
            rows_emitted=rows_emitted,
            baseline_host_bytes=scanned_bytes,
        )
