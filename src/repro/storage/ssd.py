"""The plain SSD read path: the baseline Relational Storage improves on.

A table's row image is laid out page-sequentially on flash. A legacy
host-side scan must pull **every page of every touched row** over the
host link, whatever the query's projectivity — the storage analogue of
Figure 1's "legacy fetch".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.db.table import Table
from repro.storage.flash import FlashConfig, FlashDevice
from repro.errors import StorageError


@dataclass
class ReadReport:
    """Cost of one read: device-side time, link time, bytes to host."""

    pages_read: int
    device_us: float
    link_us: float
    host_bytes: int

    @property
    def total_us(self) -> float:
        # Flash reads and link transfer pipeline: the slower side dominates.
        return max(self.device_us, self.link_us) + min(self.device_us, self.link_us) * 0.05


class SsdTable:
    """A table resident on the simulated SSD."""

    def __init__(self, table: Table, flash: Optional[FlashDevice] = None):
        self.table = table
        self.flash = flash or FlashDevice()
        self._page_bytes = self.flash.config.page_bytes
        if table.schema.row_stride > self._page_bytes:
            raise StorageError(
                f"row stride {table.schema.row_stride} exceeds page size"
            )

    @property
    def rows_per_page(self) -> int:
        return self._page_bytes // self.table.schema.row_stride

    @property
    def total_pages(self) -> int:
        return math.ceil(self.table.nrows / self.rows_per_page)

    def scan_rows(self) -> Tuple[np.ndarray, ReadReport]:
        """Legacy full scan: ship every page to the host."""
        pages = self.total_pages
        device_us = self.flash.read_pages_us(pages)
        host_bytes = pages * self._page_bytes
        link_us = self.flash.host_transfer_us(host_bytes)
        report = ReadReport(
            pages_read=pages,
            device_us=device_us,
            link_us=link_us,
            host_bytes=host_bytes,
        )
        return self.table.frame, report

    def read_row(self, slot: int) -> Tuple[dict, ReadReport]:
        """Point read: one page to the host."""
        if not 0 <= slot < self.table.nrows:
            raise StorageError(f"row {slot} out of range")
        device_us = self.flash.read_pages_us(1)
        report = ReadReport(
            pages_read=1,
            device_us=device_us,
            link_us=self.flash.host_transfer_us(self._page_bytes),
            host_bytes=self._page_bytes,
        )
        return self.table.row(slot), report
