"""The plain SSD read path: the baseline Relational Storage improves on.

A table's row image is laid out page-sequentially on flash. A legacy
host-side scan must pull **every page of every touched row** over the
host link, whatever the query's projectivity — the storage analogue of
Figure 1's "legacy fetch".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.db.table import Table
from repro.faults import WAL_BITFLIP, WAL_FLUSH, WAL_TORN, FaultInjector
from repro.storage.flash import FlashConfig, FlashDevice
from repro.errors import StorageError


@dataclass
class ReadReport:
    """Cost of one read: device-side time, link time, bytes to host."""

    pages_read: int
    device_us: float
    link_us: float
    host_bytes: int

    @property
    def total_us(self) -> float:
        # Flash reads and link transfer pipeline: the slower side dominates.
        return max(self.device_us, self.link_us) + min(self.device_us, self.link_us) * 0.05


class SsdTable:
    """A table resident on the simulated SSD."""

    def __init__(self, table: Table, flash: Optional[FlashDevice] = None):
        self.table = table
        self.flash = flash or FlashDevice()
        self._page_bytes = self.flash.config.page_bytes
        if table.schema.row_stride > self._page_bytes:
            raise StorageError(
                f"row stride {table.schema.row_stride} exceeds page size"
            )

    @property
    def rows_per_page(self) -> int:
        return self._page_bytes // self.table.schema.row_stride

    @property
    def total_pages(self) -> int:
        return math.ceil(self.table.nrows / self.rows_per_page)

    def scan_rows(self) -> Tuple[np.ndarray, ReadReport]:
        """Legacy full scan: ship every page to the host."""
        pages = self.total_pages
        device_us = self.flash.read_pages_us(pages)
        host_bytes = pages * self._page_bytes
        link_us = self.flash.host_transfer_us(host_bytes)
        report = ReadReport(
            pages_read=pages,
            device_us=device_us,
            link_us=link_us,
            host_bytes=host_bytes,
        )
        return self.table.frame, report

    def read_row(self, slot: int) -> Tuple[dict, ReadReport]:
        """Point read: one page to the host."""
        if not 0 <= slot < self.table.nrows:
            raise StorageError(f"row {slot} out of range")
        device_us = self.flash.read_pages_us(1)
        report = ReadReport(
            pages_read=1,
            device_us=device_us,
            link_us=self.flash.host_transfer_us(self._page_bytes),
            host_bytes=self._page_bytes,
        )
        return self.table.row(slot), report


class SsdLog:
    """An append-only log region on the simulated flash device.

    This is the durability substrate of :mod:`repro.db.wal`: appends are
    buffered in controller DRAM and reach the NAND media only at
    :meth:`flush` (the commit barrier), priced through
    :meth:`FlashDevice.write_pages_us` so every WAL byte costs simulated
    program time. The append/flush split is what makes crash semantics
    honest — anything not flushed when the "power fails" is gone.

    With a :class:`~repro.faults.FaultInjector` attached, flushes and
    read-backs are *shaped* rather than failed loudly, the way real
    storage betrays you:

    * ``wal.torn`` — the final append of a flush is cut at a seeded
      intra-record offset (a torn write);
    * ``wal.flush`` — only a prefix of the whole flushed batch reaches
      the media (a partial flush, possibly spanning records);
    * ``wal.bitflip`` — one bit of the returned image is flipped on
      read-back (detected later by record checksums).
    """

    def __init__(
        self,
        flash: Optional[FlashDevice] = None,
        fault_injector: Optional[FaultInjector] = None,
        initial: bytes = b"",
    ):
        self.flash = flash or FlashDevice()
        #: Optional chaos hook; ``None`` means perfectly reliable media.
        self.fault_injector = fault_injector
        self._media = bytearray(initial)
        self._pending: List[bytes] = []
        self.appends = 0
        self.flushes = 0
        self.torn_appends = 0
        self.partial_flushes = 0
        self.bitflips = 0
        #: Log truncations (checkpoints) — each one erases the old image,
        #: the closest thing this model has to a NAND block erase.
        self.erases = 0

    @property
    def durable_bytes(self) -> int:
        """Bytes that have actually reached the media."""
        return len(self._media)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered in controller DRAM, lost on a crash."""
        return sum(len(c) for c in self._pending)

    def append(self, data: bytes) -> None:
        """Buffer one record's bytes for the next flush."""
        if not data:
            return
        self._pending.append(bytes(data))
        self.appends += 1

    def flush(self) -> float:
        """Program buffered bytes to media; returns device microseconds."""
        if not self._pending:
            return 0.0
        chunks, self._pending = self._pending, []
        inj = self.fault_injector
        if inj is not None and inj.armed and inj.should_fault(WAL_TORN):
            last = chunks[-1]
            chunks[-1] = last[: inj.draw(len(last))] if len(last) > 1 else b""
            self.torn_appends += 1
        blob = b"".join(chunks)
        if blob and inj is not None and inj.armed and inj.should_fault(WAL_FLUSH):
            blob = blob[: inj.draw(len(blob))]
            self.partial_flushes += 1
        start = len(self._media)
        self._media.extend(blob)
        first_page = start // self.flash.config.page_bytes
        last_page = max(len(self._media) - 1, start) // self.flash.config.page_bytes
        us = self.flash.write_pages_us(last_page - first_page + 1) if blob else 0.0
        self.flushes += 1
        return us

    def read_all(self) -> Tuple[bytes, float]:
        """The durable image plus the device+link microseconds to read it."""
        pages = math.ceil(len(self._media) / self.flash.config.page_bytes)
        us = self.flash.read_pages_us(pages) + self.flash.host_transfer_us(
            len(self._media)
        )
        data = bytes(self._media)
        inj = self.fault_injector
        if data and inj is not None and inj.armed and inj.should_fault(WAL_BITFLIP):
            pos = inj.draw(len(data) * 8)
            flipped = bytearray(data)
            flipped[pos // 8] ^= 1 << (pos % 8)
            data = bytes(flipped)
            self.bitflips += 1
        return data, us

    def media(self) -> bytes:
        """A copy of the durable image (for crash-point harnesses)."""
        return bytes(self._media)

    def crash(self) -> None:
        """Simulate power loss: buffered-but-unflushed bytes vanish."""
        self._pending.clear()

    def truncate(self, keep: bytes = b"") -> None:
        """Replace the log with ``keep`` (checkpoint truncation)."""
        self._pending.clear()
        self._media = bytearray(keep)
        self.erases += 1
