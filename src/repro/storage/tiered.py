"""Tiered fabric: Relational Storage and Relational Memory together
(paper §VII, Q3).

"Consider that the two fabrics may play different roles. For example,
the storage one can convert from compressed columns to rows in memory,
and the in-memory one can allow the processor to access arbitrary column
groups."

Pipeline implemented here:

1. cold data rests on flash as a **compressed column archive** — each
   column encoded with the best *fabric-compatible* codec (§III-D), so
   a row range decodes block-locally;
2. the **storage fabric** reads only the needed compressed segments,
   decompresses in-device, converts columns to a row-major frame, and
   ships rows over the host link;
3. the **memory fabric** then serves arbitrary ephemeral column groups
   over that fresh row frame, exactly as everywhere else in the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.ephemeral import EphemeralColumnGroup
from repro.core.fabric import RelationalMemory
from repro.db.compression import best_codec
from repro.db.compression.base import CompressedColumn
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.storage.flash import FlashConfig, FlashDevice
from repro.errors import DeviceTimeoutError, FlashReadError, StorageError
from repro.faults import RetryPolicy
from repro.hw.config import PlatformConfig
from repro.obs import Tracer, maybe_span


@dataclass
class _ArchivedColumn:
    """One column at rest: compressed ints or raw opaque bytes."""

    name: str
    compressed: Optional[CompressedColumn]  # None for CHAR payloads
    codec_name: Optional[str]
    raw_bytes: Optional[bytes]
    width: int
    n_values: int

    @property
    def stored_bytes(self) -> int:
        if self.compressed is not None:
            return self.compressed.nbytes
        return len(self.raw_bytes)

    def decode_range(self, start: int, stop: int) -> np.ndarray:
        if self.compressed is not None:
            from repro.db.compression import all_codecs

            codec = all_codecs()[self.codec_name]
            return codec.decode_range(self.compressed, start, stop)
        chunk = self.raw_bytes[start * self.width : stop * self.width]
        return np.frombuffer(chunk, dtype=np.uint8).reshape(-1, self.width)


class ColumnArchive:
    """A table frozen into per-column, fabric-compatible compressed form."""

    def __init__(self, schema: TableSchema, columns: List[_ArchivedColumn], nrows: int):
        self.schema = schema
        self._columns = {c.name: c for c in columns}
        self.nrows = nrows

    @classmethod
    def from_table(cls, table: Table) -> "ColumnArchive":
        """Archive every user column, picking the best fabric-compatible
        codec per column (CHAR payloads stay raw: they are opaque bytes)."""
        archived: List[_ArchivedColumn] = []
        for col in table.schema.user_columns:
            values = table.column(col.name)
            if col.dtype.np_dtype is None:
                archived.append(
                    _ArchivedColumn(
                        name=col.name,
                        compressed=None,
                        codec_name=None,
                        raw_bytes=np.ascontiguousarray(values).tobytes(),
                        width=col.dtype.width,
                        n_values=table.nrows,
                    )
                )
                continue
            codec = best_codec(values, fabric_only=True)
            archived.append(
                _ArchivedColumn(
                    name=col.name,
                    compressed=codec.encode(values),
                    codec_name=codec.name,
                    raw_bytes=None,
                    width=col.dtype.width,
                    n_values=table.nrows,
                )
            )
        return cls(schema=table.schema, columns=archived, nrows=table.nrows)

    def column(self, name: str) -> _ArchivedColumn:
        if name not in self._columns:
            raise StorageError(f"archive has no column {name!r}")
        return self._columns[name]

    @property
    def stored_bytes(self) -> int:
        return sum(c.stored_bytes for c in self._columns.values())

    @property
    def raw_row_bytes(self) -> int:
        return self.nrows * self.schema.row_stride

    @property
    def compression_ratio(self) -> float:
        return self.raw_row_bytes / self.stored_bytes if self.stored_bytes else 0.0

    def codec_summary(self) -> Dict[str, str]:
        return {
            name: (c.codec_name or "raw") for name, c in self._columns.items()
        }


@dataclass
class TieredReport:
    """Cost picture of one cold→warm materialization."""

    compressed_bytes_read: int
    pages_read: int
    device_us: float
    decompress_us: float
    link_us: float
    host_bytes: int
    #: What a plain (uncompressed rows on flash) read would have cost.
    baseline_pages: int
    baseline_us: float
    #: Flash read attempts that faulted and were retried.
    retries: int = 0
    #: Backoff time spent waiting between flash read retries.
    retry_us: float = 0.0
    #: True when the in-storage engine faulted and decompression ran on
    #: the host CPU instead (compressed blocks shipped over the link).
    degraded: bool = False

    @property
    def total_us(self) -> float:
        return max(self.device_us, self.decompress_us, self.link_us) + self.retry_us

    @property
    def speedup_vs_uncompressed(self) -> float:
        return self.baseline_us / self.total_us if self.total_us else float("inf")


class TieredFabric:
    """Storage fabric (decompress columns→rows) + memory fabric
    (rows→ephemeral column groups).

    Resilience: faulted flash page reads are retried under
    ``retry_policy`` (backoff priced into the report); a faulted
    in-storage decompression engine degrades to shipping compressed
    blocks over the host link and decompressing on the host CPU — slower,
    but the materialized rows are identical.
    """

    #: Host-CPU decompression throughput used in degraded mode —
    #: deliberately below the in-storage engine's (no custom logic).
    HOST_DECOMPRESS_MB_S = 800.0

    def __init__(
        self,
        archive: ColumnArchive,
        platform: Optional[PlatformConfig] = None,
        flash: Optional[FlashDevice] = None,
        retry_policy: Optional[RetryPolicy] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.archive = archive
        self.flash = flash or FlashDevice()
        # Storage-side backoff is priced in microseconds.
        self.retry_policy = retry_policy or RetryPolicy(retries=3, base=50.0, cap=5_000.0)
        self.memory_fabric = RelationalMemory(platform, tracer=tracer)
        #: Observability hook, shared with the memory fabric: cold→warm
        #: materializations and the downstream ephemeral groups appear in
        #: the same trace. Storage spans tick in device microseconds.
        self.tracer = tracer
        #: Materializations that fell back to host-side decompression.
        self.degraded_runs = 0
        #: Tier-movement counters (read by repro.obs.collectors): each
        #: successful materialize promotes a cold row range into warm
        #: memory; :meth:`demote` records the reverse movement when the
        #: host releases a warm frame back to flash-only residence.
        self.promotions = 0
        self.promoted_rows = 0
        self.demotions = 0
        self.demoted_rows = 0

    def materialize_rows(
        self, row_lo: int = 0, row_hi: Optional[int] = None
    ) -> Tuple[Table, TieredReport]:
        """Storage-fabric step: decompress the row range in-device and
        ship it to memory as a row-major table."""
        archive = self.archive
        row_hi = archive.nrows if row_hi is None else row_hi
        if not 0 <= row_lo <= row_hi <= archive.nrows:
            raise StorageError(f"row range [{row_lo}, {row_hi}) out of bounds")

        with maybe_span(
            self.tracer,
            "storage.materialize",
            layer="storage",
            rows_in=archive.nrows,
            rows_out=row_hi - row_lo,
        ) as span:
            table = Table(archive.schema, capacity=max(1, row_hi - row_lo))
            columns: Dict[str, np.ndarray] = {}
            compressed_read = 0
            with maybe_span(self.tracer, "storage.decompress", layer="storage"):
                for col in archive.schema.user_columns:
                    arch = archive.column(col.name)
                    values = arch.decode_range(row_lo, row_hi)
                    # Range decode touches whole blocks; charge proportionally.
                    fraction = (row_hi - row_lo) / archive.nrows if archive.nrows else 0
                    compressed_read += math.ceil(arch.stored_bytes * fraction)
                    if col.dtype.np_dtype is None:
                        columns[col.name] = values.view(f"S{col.dtype.width}").reshape(-1)
                    else:
                        columns[col.name] = values.astype(col.dtype.np_dtype)
                if row_hi > row_lo:
                    table.append_arrays(columns)

            cfg = self.flash.config
            pages = math.ceil(compressed_read / cfg.page_bytes)
            with maybe_span(
                self.tracer, "storage.read", layer="storage", pages=pages
            ) as read_span:
                device_us, retries, retry_us = self._read_with_retry(pages)
                read_span.add_counters({"device_us": device_us, "retries": retries})
                read_span.set_duration(device_us + retry_us)
            degraded = False
            try:
                decompress_us = self.flash.engine_us(compressed_read)
            except DeviceTimeoutError:
                # In-storage engine down: ship the compressed blocks as-is
                # and decompress on the host CPU (the software path).
                degraded = True
                self.degraded_runs += 1
                decompress_us = compressed_read / (self.HOST_DECOMPRESS_MB_S * 1e6) * 1e6
            host_bytes = (row_hi - row_lo) * archive.schema.row_stride
            if degraded:
                link_us = self.flash.host_transfer_us(compressed_read)
            else:
                link_us = self.flash.host_transfer_us(host_bytes)
            with maybe_span(
                self.tracer, "storage.link", layer="storage"
            ) as link_span:
                link_span.add_counters({"link_us": link_us, "host_bytes": host_bytes})
                link_span.set_duration(link_us)

            baseline_pages = math.ceil(host_bytes / cfg.page_bytes)
            baseline_device = FlashDevice(cfg).read_pages_us(baseline_pages)
            baseline_link = FlashDevice(cfg).host_transfer_us(host_bytes)
            report = TieredReport(
                compressed_bytes_read=compressed_read,
                pages_read=pages,
                device_us=device_us,
                decompress_us=decompress_us,
                link_us=link_us,
                host_bytes=host_bytes,
                baseline_pages=baseline_pages,
                baseline_us=max(baseline_device, baseline_link),
                retries=retries,
                retry_us=retry_us,
                degraded=degraded,
            )
            span.set_attrs(degraded=degraded)
            span.add_counters(
                {
                    "compressed_bytes_read": compressed_read,
                    "decompress_us": decompress_us,
                }
            )
            span.set_duration(report.total_us)
        self.promotions += 1
        self.promoted_rows += row_hi - row_lo
        return table, report

    def demote(self, table: Table) -> int:
        """Release a warm row frame: the rows now live only in the cold
        compressed archive again. Pure bookkeeping (the archive is the
        source of truth and was never mutated); returns the rows demoted."""
        rows = table.nrows
        self.demotions += 1
        self.demoted_rows += rows
        return rows

    def _read_with_retry(self, pages: int) -> Tuple[float, int, float]:
        """Read ``pages``, retrying faulted attempts with backoff.

        Returns ``(device_us, retries, retry_us)``. A read that faults
        past the retry budget propagates its :class:`FlashReadError` —
        there is no software substitute for unreadable media.
        """
        policy = self.retry_policy
        retries = 0
        retry_us = 0.0
        for attempt in range(policy.retries + 1):
            try:
                return self.flash.read_pages_us(pages), retries, retry_us
            except FlashReadError:
                if attempt == policy.retries:
                    raise
                retries += 1
                retry_us += policy.backoff(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def ephemeral(
        self, table: Table, columns: Iterable[str]
    ) -> EphemeralColumnGroup:
        """Memory-fabric step over a materialized row table."""
        geometry = table.schema.geometry(list(columns))
        return self.memory_fabric.configure(
            table.frame, geometry, base_geometry=table.schema.full_geometry()
        )
