"""Storage substrate: flash device model, SSD read path, and the
Relational Storage fabric instance (paper Section IV-D)."""

from repro.storage.flash import FlashConfig, FlashDevice
from repro.storage.smartssd import (
    RelationalStorage,
    StorageEphemeralGroup,
    StorageReport,
)
from repro.storage.ssd import ReadReport, SsdLog, SsdTable
from repro.storage.tiered import ColumnArchive, TieredFabric, TieredReport

__all__ = [
    "FlashConfig",
    "FlashDevice",
    "ReadReport",
    "RelationalStorage",
    "SsdLog",
    "SsdTable",
    "StorageEphemeralGroup",
    "StorageReport",
    "ColumnArchive",
    "TieredFabric",
    "TieredReport",
]
