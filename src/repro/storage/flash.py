"""Flash device geometry and service-time model.

The substrate for Relational Storage (paper §IV-D): a NAND array with
``channels × dies`` of parallelism — the "internal parallelism of the
storage device" the paper wants to exploit — plus an internal controller
clock for in-storage compute and a host link (the bottleneck near-data
processing avoids).

Times are in microseconds; conversions to host-CPU cycles happen at the
callers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import StorageError
from repro.faults import FLASH_READ, STORAGE_ENGINE, FaultInjector


@dataclass(frozen=True)
class FlashConfig:
    """An SSD in the SmartSSD/OpenSSD class."""

    channels: int = 8
    dies_per_channel: int = 8
    page_bytes: int = 4096
    #: NAND array read latency per page.
    read_page_us: float = 60.0
    #: NAND array program (write) latency per page — an order of
    #: magnitude above reads on real flash, which is what makes WAL
    #: appends a visible cost in the ledger.
    program_page_us: float = 350.0
    #: Per-channel bus time to move one page from die to controller.
    channel_page_us: float = 4.0
    #: Host link bandwidth. Deliberately below the aggregate internal
    #: bandwidth — the imbalance near-data processing exploits (a
    #: SmartSSD-class device shares a modest PCIe allocation while its
    #: channels sustain several GB/s internally).
    host_link_mb_s: float = 1500.0
    #: In-storage compute throughput of the transformation engine.
    engine_mb_s: float = 3500.0

    @property
    def total_dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def internal_mb_s(self) -> float:
        """Aggregate internal read bandwidth across channels."""
        per_channel = self.page_bytes / (self.channel_page_us * 1e-6) / 1e6
        return per_channel * self.channels


class FlashDevice:
    """Prices page reads with die- and channel-level overlap."""

    def __init__(
        self,
        config: FlashConfig = FlashConfig(),
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.config = config
        #: Optional chaos hook; ``None`` means a perfectly reliable device.
        self.fault_injector = fault_injector
        self.pages_read = 0
        self.pages_written = 0
        self.busy_us = 0.0

    def read_pages_us(self, n_pages: int) -> float:
        """Service time for ``n_pages`` sequentially-striped page reads.

        Pages stripe round-robin over channels and dies; array reads
        overlap across dies, channel transfers serialize per channel.
        """
        if n_pages < 0:
            raise StorageError(f"negative page count {n_pages}")
        if n_pages == 0:
            return 0.0
        if self.fault_injector is not None and self.fault_injector.armed:
            self.fault_injector.check(FLASH_READ, detail=f"{n_pages} pages")
        cfg = self.config
        self.pages_read += n_pages
        per_channel = math.ceil(n_pages / cfg.channels)
        array_waves = math.ceil(per_channel / cfg.dies_per_channel)
        array_us = array_waves * cfg.read_page_us
        transfer_us = per_channel * cfg.channel_page_us
        # Array reads pipeline behind channel transfers after the first wave.
        total = max(array_us, transfer_us) + min(
            cfg.read_page_us, cfg.channel_page_us
        )
        self.busy_us += total
        return total

    def write_pages_us(self, n_pages: int) -> float:
        """Service time to program ``n_pages`` sequentially-striped pages.

        Programs stripe like reads: array programs overlap across dies,
        channel transfers (host/controller -> die) serialize per channel.
        """
        if n_pages < 0:
            raise StorageError(f"negative page count {n_pages}")
        if n_pages == 0:
            return 0.0
        cfg = self.config
        self.pages_written += n_pages
        per_channel = math.ceil(n_pages / cfg.channels)
        array_waves = math.ceil(per_channel / cfg.dies_per_channel)
        array_us = array_waves * cfg.program_page_us
        transfer_us = per_channel * cfg.channel_page_us
        total = max(array_us, transfer_us) + min(
            cfg.program_page_us, cfg.channel_page_us
        )
        self.busy_us += total
        return total

    def host_transfer_us(self, nbytes: int) -> float:
        """Time on the host link for ``nbytes``."""
        if nbytes < 0:
            raise StorageError(f"negative byte count {nbytes}")
        return nbytes / (self.config.host_link_mb_s * 1e6) * 1e6

    def engine_us(self, nbytes: int) -> float:
        """In-storage transformation time over ``nbytes`` of row data."""
        if nbytes < 0:
            raise StorageError(f"negative byte count {nbytes}")
        if nbytes and self.fault_injector is not None and self.fault_injector.armed:
            self.fault_injector.check(STORAGE_ENGINE, detail=f"{nbytes} bytes")
        return nbytes / (self.config.engine_mb_s * 1e6) * 1e6
