"""Crash-point chaos testing for the MVCC durability subsystem.

The durability claim of :mod:`repro.db.wal` is only as strong as the
worst crash point, so this harness doesn't sample — it *enumerates*: run
a seeded HTAP-style write mix with the write-ahead log attached, then
simulate a crash at **every** record boundary of the durable log (plus
randomized intra-record torn offsets), recover each truncated image, and
assert the four invariants:

1. **committed-durable** — every transaction whose COMMIT record made it
   to the media is fully present after recovery;
2. **uncommitted-invisible** — nothing from transactions without a
   durable COMMIT is visible to any snapshot;
3. **oracle-equal** — the recovered visible rows match a brute-force
   :class:`ShadowOracle` that models snapshot isolation in plain Python
   dicts (no numpy, no fabric, no shared code with the engine);
4. **recover-twice-idempotent** — recovering the same image again yields
   byte-identical frames and the same clock.

A fifth check corrupts a record in the *middle* of the log and demands
the typed :class:`~repro.errors.WalCorruptionError` rather than a
silently wrong answer.

Everything is a pure function of the seed, so a failing point replays
exactly. Run as a script (the CI chaos job does)::

    PYTHONPATH=src python -m repro.chaos --seed 3 --txns 200 --torn 64 \
        --json chaos_report.json

A second mode (``--mode overload``) attacks the serving front door
instead of the log: seeded open-loop bursts from well-behaved OLTP
tenants plus one hostile analytics tenant that over-submits far past its
quota, with the ``serve.shed`` and ``serve.clock_skew`` fault sites
armed. The run's event log is replayed brute-force by
:class:`repro.serve.ServeOracle` and the harness asserts the overload
invariants: no quota ever exceeded, no admitted request lost, every
request resolves exactly once, the protected tenants' OLTP p99 stays
bounded, the hostile tenant is actually limited, and the whole run is
bit-deterministic per seed::

    PYTHONPATH=src python -m repro.chaos --mode overload --seed 3 \
        --json overload_report.json

A third mode (``--mode shard-kill``) attacks the scatter-gather layer:
a seeded write mix runs through a durable 4-shard
:class:`repro.dist.ShardCluster` (one :class:`ShadowOracle` per shard
fault domain), then every shard in turn is SIGKILLed at a scatter
boundary and the next query must come back oracle-equal after WAL
recovery; a persistently-dead shard must degrade to a *typed* partial
whose missing key ranges match the oracle exactly; a stalled shard must
lose to its hedge; and an unkilled 2- and 8-shard lineitem cluster must
answer TPC-H Q1/Q6 byte-identically to serial execution::

    PYTHONPATH=src python -m repro.chaos --mode shard-kill --seed 3 \
        --json shard_kill_report.json

A fourth mode (``--mode sql-fuzz``) drives the whole stack through the
SQL front door: a seeded statement stream (DML, transactions, joins,
grouping, subqueries) runs through the vector engine, the volcano
engine, a determinism twin, the scatter-gather cluster where the
statement fits its dialect, and the brute-force dict-row oracle of
:mod:`repro.db.sql.oracle` — every answer byte-identical between engine
modes and value-identical to the oracle — then replays the WAL
crash-point checker over the log the SQL-issued DML produced::

    PYTHONPATH=src python -m repro.chaos --mode sql-fuzz --seed 3 \
        --json sql_fuzz_report.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.mvcc_filter import LIVE_TS, NEVER_TS, visible_mask
from repro.db.mvcc import TransactionManager
from repro.db.schema import TableSchema
from repro.db.table import Table
from repro.db.wal import (
    Checkpoint,
    Checkpointer,
    WriteAheadLog,
    recover,
    scan_records,
)
from repro.errors import WalCorruptionError, WriteConflictError
from repro.storage.ssd import SsdLog
from repro.workloads.htap import orders_schema

__all__ = [
    "ShadowOracle",
    "WorkloadJournal",
    "ChaosReport",
    "OverloadChaosReport",
    "run_seeded_workload",
    "check_crash_point",
    "run_chaos",
    "overload_config",
    "overload_specs",
    "run_overload_chaos",
    "ShardKillChaosReport",
    "run_shard_kill_chaos",
    "table_visible_rows",
]

#: A logical row state: the row's decoded values, frozen and orderable.
RowKey = Tuple[Tuple[str, object], ...]


def _freeze(values: Dict[str, object]) -> RowKey:
    return tuple(sorted(values.items()))


def table_visible_rows(table: Table, snapshot_ts: int) -> List[RowKey]:
    """The committed rows a snapshot sees, as a sorted list of row keys."""
    mask = visible_mask(table.begin_ts, table.end_ts, snapshot_ts)
    return sorted(_freeze(table.row(int(i))) for i in np.flatnonzero(mask))


class ShadowOracle:
    """Brute-force snapshot-isolation model over Python dict rows.

    Mirrors the slot discipline of :class:`~repro.db.table.Table` — every
    insert/update appends a version row stamped ``(NEVER, LIVE)``, commit
    stamps begin/end timestamps, abort leaves invisible garbage — but in
    ~40 lines of dict-and-list Python with no numpy, no frames, and no
    shared code with the system under test. The MVCC property tests and
    the crash-point harness both compare against it.
    """

    def __init__(self):
        #: Every version ever staged: ``[values, begin_ts, end_ts]``.
        self.rows: List[List] = []
        self._staged: Dict[int, List[Tuple[Optional[int], Optional[int]]]] = {}

    def begin(self, txn_id: int) -> None:
        self._staged[txn_id] = []

    def insert(self, txn_id: int, values: Dict[str, object]) -> int:
        slot = len(self.rows)
        self.rows.append([dict(values), NEVER_TS, LIVE_TS])
        self._staged[txn_id].append((slot, None))
        return slot

    def update(self, txn_id: int, old_slot: int, values: Dict[str, object]) -> int:
        slot = len(self.rows)
        self.rows.append([dict(values), NEVER_TS, LIVE_TS])
        self._staged[txn_id].append((slot, old_slot))
        return slot

    def delete(self, txn_id: int, old_slot: int) -> None:
        self._staged[txn_id].append((None, old_slot))

    def commit(self, txn_id: int, commit_ts: int) -> None:
        for new_slot, old_slot in self._staged.pop(txn_id):
            if new_slot is not None:
                self.rows[new_slot][1] = commit_ts
            if old_slot is not None:
                self.rows[old_slot][2] = commit_ts

    def abort(self, txn_id: int) -> None:
        self._staged.pop(txn_id, None)

    def vacuum(self, horizon: int) -> int:
        """Mirror :meth:`TransactionManager.vacuum`'s compaction so oracle
        slot indices keep tracking the compacted table's. Quiescent only —
        staged intents hold slot indices."""
        assert not self._staged, "oracle vacuum with staged transactions"
        before = len(self.rows)
        self.rows = [
            r for r in self.rows if r[1] != NEVER_TS and r[2] > horizon
        ]
        return before - len(self.rows)

    def visible(self, snapshot_ts: int) -> List[RowKey]:
        return sorted(
            _freeze(values)
            for values, begin, end in self.rows
            if begin <= snapshot_ts < end
        )


@dataclass
class WorkloadJournal:
    """Everything a crash probe needs about one seeded workload run.

    ``commits`` maps each durable COMMIT-record end offset to the oracle
    state established by that commit; a crash at byte ``b`` must recover
    exactly the state of the last entry with offset ``<= b``.
    """

    media: bytes
    schemas: Dict[str, TableSchema]
    commits: List[Tuple[int, List[RowKey]]]
    checkpoint: Optional[Checkpoint] = None
    #: Oracle/table agreement on the *uncrashed* final state.
    final_rows: List[RowKey] = field(default_factory=list)
    txns_run: int = 0
    conflicts: int = 0
    deliberate_aborts: int = 0
    #: Compacting vacuums taken mid-workload (each one checkpoints).
    vacuums: int = 0

    def expected_at(self, offset: int) -> List[RowKey]:
        state: List[RowKey] = []
        for off, snap in self.commits:
            if off <= offset:
                state = snap
            else:
                break
        return state


def run_seeded_workload(
    seed: int,
    n_txns: int = 200,
    initial_rows: int = 50,
    checkpoint_every: Optional[int] = None,
    vacuum_every: Optional[int] = None,
    fault_injector=None,
) -> WorkloadJournal:
    """Drive a seeded order-ledger write mix through a WAL-attached manager.

    Each step is one of: a writer transaction (insert an order, advance a
    couple of statuses), a deliberate abort, a first-committer-wins
    conflict pair, or a delete. The :class:`ShadowOracle` shadows every
    operation; after each successful commit the journal captures
    ``(durable log offset, oracle visible rows)``. With
    ``checkpoint_every``, a quiescent checkpoint is taken every that many
    transactions and the journal restarts from it (crash points then
    exercise checkpoint + short-log recovery). With ``vacuum_every`` (the
    CLI default — CI exercises it on every seed), a quiescent compacting
    vacuum runs every that many transactions — slot indices move, the
    manager checkpoints behind it, and the oracle compacts in lockstep —
    so crash points also cover the vacuum/WAL interaction that once
    silently lost committed rows.
    """
    rng = np.random.default_rng(seed)
    schema = orders_schema()
    table = Table(schema)
    wal = WriteAheadLog(device=SsdLog(fault_injector=fault_injector))
    manager = TransactionManager(wal=wal)
    oracle = ShadowOracle()
    journal = WorkloadJournal(media=b"", schemas={schema.name: schema}, commits=[])
    checkpointer = Checkpointer(wal)
    next_order = 0

    def new_order() -> dict:
        nonlocal next_order
        next_order += 1
        return {
            "o_id": next_order,
            "o_customer": int(rng.integers(1, 100)),
            "o_amount": float(rng.uniform(1, 200)),
            "o_status": 0,
        }

    def committed_slots() -> np.ndarray:
        return np.flatnonzero(visible_mask(table.begin_ts, table.end_ts, manager.now))

    def journal_commit() -> None:
        journal.commits.append((wal.durable_bytes, oracle.visible(manager.now)))

    def writer_txn(n_updates: int, abort_it: bool = False) -> None:
        txn = manager.begin()
        oracle.begin(txn.txn_id)
        slot = txn.insert(table, new_order())
        oracle.insert(txn.txn_id, table.row(slot))
        live = committed_slots()
        picks = (
            rng.choice(live, size=min(n_updates, len(live)), replace=False)
            if len(live)
            else []
        )
        try:
            for old in picks:
                old = int(old)
                row = table.row(old)
                row["o_status"] = min(int(row["o_status"]) + 1, 2)
                new_slot = txn.update(table, old, {"o_status": row["o_status"]})
                oracle.update(txn.txn_id, old, table.row(new_slot))
            if abort_it:
                manager.abort(txn)
                oracle.abort(txn.txn_id)
                journal.deliberate_aborts += 1
            else:
                manager.commit(txn)
                oracle.commit(txn.txn_id, txn.commit_ts)
                journal_commit()
        except WriteConflictError:
            oracle.abort(txn.txn_id)
            journal.conflicts += 1

    def conflict_pair() -> None:
        live = committed_slots()
        if not len(live):
            writer_txn(1)
            return
        target = int(rng.choice(live))
        a, b = manager.begin(), manager.begin()
        oracle.begin(a.txn_id)
        oracle.begin(b.txn_id)
        try:
            new_a = a.update(table, target, {"o_status": 2})
            oracle.update(a.txn_id, target, table.row(new_a))
            manager.commit(a)
            oracle.commit(a.txn_id, a.commit_ts)
            journal_commit()
        except WriteConflictError:
            oracle.abort(a.txn_id)
            journal.conflicts += 1
        try:
            new_b = b.update(table, target, {"o_status": 1})
            oracle.update(b.txn_id, target, table.row(new_b))
            manager.commit(b)
            oracle.commit(b.txn_id, b.commit_ts)
            journal_commit()
        except WriteConflictError:
            oracle.abort(b.txn_id)
            journal.conflicts += 1
        finally:
            if b.txn_id in manager._active:
                manager.abort(b)
                oracle.abort(b.txn_id)

    def delete_txn() -> None:
        live = committed_slots()
        if not len(live):
            return
        target = int(rng.choice(live))
        txn = manager.begin()
        oracle.begin(txn.txn_id)
        try:
            txn.delete(table, target)
            oracle.delete(txn.txn_id, target)
            manager.commit(txn)
            oracle.commit(txn.txn_id, txn.commit_ts)
            journal_commit()
        except WriteConflictError:
            oracle.abort(txn.txn_id)
            journal.conflicts += 1

    # Seed a committed base so updates have targets from the start.
    seed_txn = manager.begin()
    oracle.begin(seed_txn.txn_id)
    for _ in range(initial_rows):
        s = seed_txn.insert(table, new_order())
        oracle.insert(seed_txn.txn_id, table.row(s))
    manager.commit(seed_txn)
    oracle.commit(seed_txn.txn_id, seed_txn.commit_ts)
    journal_commit()

    for i in range(n_txns):
        roll = rng.random()
        if roll < 0.62:
            writer_txn(int(rng.integers(0, 3)))
        elif roll < 0.74:
            writer_txn(int(rng.integers(1, 3)), abort_it=True)
        elif roll < 0.88:
            conflict_pair()
        else:
            delete_txn()
        journal.txns_run += 1
        if (
            checkpoint_every
            and (i + 1) % checkpoint_every == 0
            and i + 1 < n_txns  # keep a real log segment after the last one
        ):
            journal.checkpoint = checkpointer.checkpoint(manager, [table])
            # The checkpoint state holds from byte 0 of the truncated log:
            # even a crash inside the CHECKPOINT marker recovers it.
            journal.commits = [(0, oracle.visible(manager.now))]
        if (
            vacuum_every
            and (i + 1) % vacuum_every == 0
            and i + 1 < n_txns  # keep a real log segment after the last one
        ):
            horizon = manager.oldest_active_snapshot()
            removed = manager.vacuum(table, checkpointer=checkpointer, tables=[table])
            if removed:
                # Slots moved: compact the oracle identically, and restart
                # the journal from the checkpoint vacuum just took (the
                # stale pre-vacuum log was truncated with it).
                oracle.vacuum(horizon)
                journal.vacuums += 1
                journal.checkpoint = checkpointer.last
                journal.commits = [(0, oracle.visible(manager.now))]

    # Leave one transaction in flight so every crash image contains
    # uncommitted intents — the uncommitted-invisible invariant must bite.
    dangling = manager.begin()
    oracle.begin(dangling.txn_id)
    s = dangling.insert(table, new_order())
    oracle.insert(dangling.txn_id, table.row(s))
    wal.flush()

    journal.media = wal.device.media()
    journal.final_rows = oracle.visible(manager.now)
    assert table_visible_rows(table, manager.now) == journal.final_rows, (
        "workload driver bug: oracle and live table disagree before any crash"
    )
    return journal


def _recover_image(
    journal: WorkloadJournal, image: bytes
):
    wal = WriteAheadLog(device=SsdLog(initial=image))
    return recover(wal, checkpoint=journal.checkpoint, schemas=journal.schemas)


def check_crash_point(journal: WorkloadJournal, offset: int) -> List[str]:
    """Crash at byte ``offset`` of the log, recover, check every invariant.

    Returns human-readable violation strings (empty means the point holds).
    """
    violations: List[str] = []
    image = journal.media[:offset]
    res = _recover_image(journal, image)
    expected = journal.expected_at(offset)
    name = next(iter(journal.schemas))
    table = res.tables.get(name)
    now = res.manager.now

    visible = table_visible_rows(table, now) if table is not None else []
    if visible != expected:
        missing = [r for r in expected if r not in visible]
        extra = [r for r in visible if r not in expected]
        violations.append(
            f"offset {offset}: oracle mismatch "
            f"({len(missing)} committed rows lost, {len(extra)} phantom rows)"
        )
    if table is not None:
        # Uncommitted-invisible, probed from the future: no snapshot —
        # even one newer than every recovered timestamp — may see rows the
        # oracle doesn't know to be committed at this crash point.
        future = table_visible_rows(table, now + 1_000_000)
        if future != expected:
            violations.append(
                f"offset {offset}: uncommitted writes leak into future snapshots"
            )

    res2 = _recover_image(journal, image)
    if res2.manager.now != now:
        violations.append(
            f"offset {offset}: second recovery clock {res2.manager.now} != {now}"
        )
    t1 = table.frame.tobytes() if table is not None else b""
    table2 = res2.tables.get(name)
    t2 = table2.frame.tobytes() if table2 is not None else b""
    if t1 != t2:
        violations.append(f"offset {offset}: second recovery is not a no-op")
    return violations


@dataclass
class ChaosReport:
    """Outcome of one full chaos run (the CI artifact)."""

    seed: int
    txns: int
    log_bytes: int = 0
    records: int = 0
    commits: int = 0
    conflicts: int = 0
    deliberate_aborts: int = 0
    boundary_points: int = 0
    torn_points: int = 0
    corruption_probes: int = 0
    corruption_detected: int = 0
    checkpointed: bool = False
    vacuums: int = 0
    violations: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations and self.corruption_detected == self.corruption_probes

    def to_dict(self) -> dict:
        return {**self.__dict__, "passed": self.passed}


def run_chaos(
    seed: int,
    n_txns: int = 200,
    torn_offsets: int = 64,
    corruption_probes: int = 8,
    checkpoint_every: Optional[int] = None,
    vacuum_every: Optional[int] = None,
) -> ChaosReport:
    """The full suite: every boundary, random torn tails, corruption probes."""
    t0 = time.perf_counter()
    journal = run_seeded_workload(
        seed,
        n_txns=n_txns,
        checkpoint_every=checkpoint_every,
        vacuum_every=vacuum_every,
    )
    records, _ = scan_records(journal.media)
    report = ChaosReport(
        seed=seed,
        txns=journal.txns_run,
        log_bytes=len(journal.media),
        records=len(records),
        commits=len(journal.commits),
        conflicts=journal.conflicts,
        deliberate_aborts=journal.deliberate_aborts,
        checkpointed=journal.checkpoint is not None,
        vacuums=journal.vacuums,
    )

    boundaries = [0] + [end for _, end in records]
    for offset in boundaries:
        report.violations.extend(check_crash_point(journal, offset))
    report.boundary_points = len(boundaries)

    rng = np.random.default_rng(seed ^ 0x5EED)
    boundary_set = set(boundaries)
    probed = 0
    for _ in range(torn_offsets * 20):
        if probed >= torn_offsets:
            break
        offset = int(rng.integers(1, len(journal.media)))
        if offset in boundary_set:
            continue
        report.violations.extend(check_crash_point(journal, offset))
        probed += 1
    report.torn_points = probed

    # Mid-log corruption must be *detected*, never silently recovered.
    # Damage a byte inside any record except the last, so an intact
    # record always follows the corruption (a damaged final record is,
    # by design, indistinguishable from a torn tail and discarded).
    report.corruption_probes = corruption_probes if len(records) >= 2 else 0
    for _ in range(report.corruption_probes):
        idx = int(rng.integers(0, len(records) - 1))
        start = 0 if idx == 0 else records[idx - 1][1]
        pos = int(rng.integers(start, records[idx][1]))
        damaged = bytearray(journal.media)
        damaged[pos] ^= 0xFF
        try:
            _recover_image(journal, bytes(damaged))
        except WalCorruptionError:
            report.corruption_detected += 1

    report.seconds = time.perf_counter() - t0
    return report


# ----------------------------------------------------------------------
# Overload chaos: the serving front door under hostile load.
# ----------------------------------------------------------------------

#: The bound the protected tenants' OLTP p99 must stay under across every
#: CI seed. With three protected tenants on three of four global slots,
#: the hostile analytics tenant capped at one slot, and degraded OLAP
#: service capped near 500k cycles, the worst OLTP wait is one OLTP
#: service (~40k) plus scheduling slack; 250k gives ~3x headroom without
#: ever excusing a real isolation failure (an uncapped hostile tenant
#: pushes p99 past 2M immediately).
OLTP_P99_BOUND_CYCLES = 250_000.0


def overload_config():
    """The canonical overload-chaos front door: three protected OLTP
    tenants with generous quotas, one hostile analytics tenant whose
    quota is far below what it offers."""
    from repro.serve import ServeConfig, TenantConfig

    return ServeConfig(
        tenants=(
            TenantConfig("app1", weight=4.0, max_concurrency=2,
                         rate_cycles_per_interval=20_000_000.0,
                         burst_cycles=40_000_000.0),
            TenantConfig("app2", weight=4.0, max_concurrency=2,
                         rate_cycles_per_interval=20_000_000.0,
                         burst_cycles=40_000_000.0),
            TenantConfig("app3", weight=4.0, max_concurrency=2,
                         rate_cycles_per_interval=20_000_000.0,
                         burst_cycles=40_000_000.0),
            TenantConfig("analytics", weight=1.0, max_concurrency=1,
                         rate_cycles_per_interval=3_000_000.0,
                         burst_cycles=6_000_000.0),
        ),
        global_concurrency=4,
        max_queue_depth=48,
        degrade_enter_queued_cycles=6_000_000.0,
        degrade_exit_queued_cycles=2_000_000.0,
    )


def overload_specs():
    """The open-loop offered load: steady OLTP (one tenant with tight
    deadlines, so expiry and clock-skew paths are exercised) plus a
    hostile analytics tenant that bursts to ~10x its cycle quota."""
    from repro.serve import LoadSpec

    return [
        LoadSpec("app1", "oltp", mean_interarrival_cycles=30_000.0,
                 cost_cycles=(5_000.0, 40_000.0),
                 deadline_budget_cycles=2_000_000.0),
        LoadSpec("app2", "oltp", mean_interarrival_cycles=30_000.0,
                 cost_cycles=(5_000.0, 40_000.0),
                 deadline_budget_cycles=150_000.0),
        LoadSpec("app3", "oltp", mean_interarrival_cycles=45_000.0,
                 cost_cycles=(5_000.0, 40_000.0)),
        LoadSpec("analytics", "olap", mean_interarrival_cycles=400_000.0,
                 cost_cycles=(500_000.0, 3_000_000.0),
                 burst_every_cycles=10_000_000.0,
                 burst_len_cycles=3_000_000.0,
                 burst_factor=8.0),
    ]


@dataclass
class OverloadChaosReport:
    """Outcome of one overload chaos run (the CI artifact)."""

    seed: int
    horizon_cycles: float
    requests: int = 0
    admitted: int = 0
    completed: int = 0
    degraded: int = 0
    throttled: int = 0
    shed: int = 0
    expired: int = 0
    oltp_p99_cycles: float = 0.0
    oltp_p99_bound_cycles: float = OLTP_P99_BOUND_CYCLES
    hostile_rejections: int = 0
    faults_fired: Dict[str, int] = field(default_factory=dict)
    degraded_mode_entries: int = 0
    sim_cycles: float = 0.0
    utilization: float = 0.0
    deterministic: bool = True
    violations: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {**self.__dict__, "passed": self.passed}


def _overload_run(seed: int, horizon_cycles: float):
    from repro.faults import (
        SERVE_CLOCK_SKEW,
        SERVE_SHED,
        FaultInjector,
        FaultPlan,
    )
    from repro.serve import ServeScheduler, submit_open_loop, synthetic_executor

    config = overload_config()
    injector = FaultInjector(
        FaultPlan(seed=seed, rates={SERVE_SHED: 0.02, SERVE_CLOCK_SKEW: 0.02})
    )
    scheduler = ServeScheduler(
        config, synthetic_executor(seed=seed), fault_injector=injector
    )
    submitted = submit_open_loop(
        scheduler, overload_specs(), horizon_cycles, seed=seed
    )
    report = scheduler.run_until_drained()
    return config, injector, submitted, report


def run_overload_chaos(
    seed: int,
    horizon_cycles: float = 40_000_000.0,
    check_determinism: bool = True,
) -> OverloadChaosReport:
    """One seeded overload storm plus every invariant check.

    Runs the canonical hostile workload through the front door, replays
    the event log with :class:`repro.serve.ServeOracle`, cross-checks the
    resolution ledger against the submission list, asserts the OLTP p99
    bound and that the hostile tenant was genuinely limited, and (by
    default) re-runs the whole storm to prove bit-determinism.
    """
    from repro.serve import REJECTED_OUTCOMES, Outcome, ServeOracle

    t0 = time.perf_counter()
    config, injector, submitted, serve_report = _overload_run(
        seed, horizon_cycles
    )
    d = serve_report.to_dict()
    out = OverloadChaosReport(
        seed=seed,
        horizon_cycles=horizon_cycles,
        requests=len(submitted),
        sim_cycles=d["sim_cycles"],
        utilization=d["utilization"],
        oltp_p99_cycles=d["oltp_p99_cycles"],
        degraded_mode_entries=d["degraded_mode_entries"],
        faults_fired=dict(injector.fired),
    )
    for lanes in d["tenants"].values():
        for s in lanes.values():
            out.admitted += s["admitted"]
            out.completed += s["completed"]
            out.degraded += s["degraded"]
            out.throttled += s["throttled"]
            out.shed += s["shed"]
            out.expired += s["expired"]

    # 1. Quotas, concurrency, conservation, breaker: the brute-force
    #    oracle replay over the full event log.
    out.violations.extend(ServeOracle(config).verify(serve_report.events))

    # 2. Every submitted request resolves exactly once, and rejected vs
    #    admitted accounting matches the resolution ledger.
    if len(serve_report.resolutions) != len(submitted):
        out.violations.append(
            f"{len(submitted)} submitted but "
            f"{len(serve_report.resolutions)} resolved"
        )
    for req in submitted:
        res = serve_report.resolutions.get(req.req_id)
        if res is None:
            out.violations.append(f"request {req.req_id} lost (never resolved)")
        elif res.outcome in REJECTED_OUTCOMES and res.error is None:
            out.violations.append(
                f"request {req.req_id} rejected ({res.outcome}) without a "
                f"typed error"
            )
        elif res.outcome is Outcome.EXPIRED and res.error is None:
            out.violations.append(
                f"request {req.req_id} expired without a typed error"
            )

    # 3. The protected tenants' OLTP tail stays bounded through the storm.
    if out.oltp_p99_cycles > OLTP_P99_BOUND_CYCLES:
        out.violations.append(
            f"OLTP p99 {out.oltp_p99_cycles:.0f} cycles exceeds the "
            f"{OLTP_P99_BOUND_CYCLES:.0f}-cycle bound"
        )

    # 4. The hostile tenant was genuinely limited, not just slowed down.
    hostile = d["tenants"].get("analytics", {}).get("olap", {})
    out.hostile_rejections = int(
        hostile.get("throttled", 0) + hostile.get("shed", 0)
    )
    if out.hostile_rejections == 0:
        out.violations.append("hostile tenant was never throttled or shed")
    if hostile.get("degraded", 0) == 0:
        out.violations.append(
            "overload never degraded the hostile tenant's OLAP answers"
        )

    # 5. Same seed, same storm: the whole report must be bit-identical.
    if check_determinism:
        _, _, _, second = _overload_run(seed, horizon_cycles)
        out.deterministic = json.dumps(
            second.to_dict(), sort_keys=True
        ) == json.dumps(d, sort_keys=True)
        if not out.deterministic:
            out.violations.append("re-run with the same seed diverged")

    out.seconds = time.perf_counter() - t0
    return out


# ----------------------------------------------------------------------
# Shard-kill chaos: the scatter-gather layer under fault-domain loss.
# ----------------------------------------------------------------------


def _raw_int(schema: TableSchema, column: str, value) -> object:
    """A decoded value back in the exact raw form the dist layer computes
    in: scaled int for DECIMAL, plain int for the other numerics, bytes
    for CHAR."""
    dtype = schema.column(column).dtype
    if isinstance(value, bytes):
        return value
    if dtype.scale:
        return int(round(float(value) * 10**dtype.scale))
    return int(value)


def _oracle_groups(schema: TableSchema, plan, rows):
    """The plan's answer, brute-forced over oracle row dicts in pure
    Python ints — no numpy, no shared code with the fragment executor."""
    acc: Dict[tuple, list] = {}
    for frozen in rows:
        d = dict(frozen)
        key = int(d[plan.key_column])
        if plan.key_low is not None and key < plan.key_low:
            continue
        if plan.key_high is not None and key > plan.key_high:
            continue
        if any(
            not p.op.apply(
                np.array([_raw_int(schema, p.column, d[p.column])]), p.value
            )[0]
            for p in plan.predicates
        ):
            continue
        gkey = tuple(_raw_int(schema, c, d[c]) for c in plan.group_by)
        into = acc.setdefault(gkey, [None] * len(plan.aggregates))
        for j, agg in enumerate(plan.aggregates):
            if agg.kind == "count":
                into[j] = (into[j] or 0) + 1
                continue
            val = 1
            for term in agg.terms:
                val *= term.const + term.coeff * _raw_int(
                    schema, term.column, d[term.column]
                )
            if into[j] is None:
                into[j] = val
            elif agg.kind == "sum":
                into[j] += val
            elif agg.kind == "min":
                into[j] = min(into[j], val)
            else:
                into[j] = max(into[j], val)
    return [(k, acc[k]) for k in sorted(acc)]


def _in_missing(key: int, missing) -> bool:
    return any(
        (lo is None or key >= lo) and (hi is None or key <= hi)
        for lo, hi in missing
    )


def _shard_kill_cluster(seed: int, n_txns: int, config, recorder=None):
    """One seeded write mix through a durable 4-shard cluster, with one
    independent :class:`ShadowOracle` per shard fault domain."""
    from repro.db.sharding import ShardedTable
    from repro.dist import ShardCluster

    schema = orders_schema()
    boundaries = [100, 200, 300]
    cluster = ShardCluster(
        ShardedTable(schema, "o_id", boundaries), config, durable=True,
        journal=recorder,
    )
    cluster.start()
    oracles = [ShadowOracle() for _ in cluster.sharded.shards]
    rng = np.random.default_rng(seed)

    def routed_insert():
        key = int(rng.integers(0, 400))
        i = cluster.sharded.shard_of(key)
        values = {
            "o_id": key,
            "o_customer": int(rng.integers(1, 50)),
            "o_amount": float(rng.integers(1, 20_000)) / 100.0,
            "o_status": int(rng.integers(0, 3)),
        }
        manager = cluster.manager_for(i)
        txn = manager.begin()
        oracles[i].begin(txn.txn_id)
        slot = txn.insert(cluster.table_for(i), values)
        oracles[i].insert(txn.txn_id, cluster.table_for(i).row(slot))
        if rng.random() < 0.1:
            manager.abort(txn)
            oracles[i].abort(txn.txn_id)
        else:
            manager.commit(txn)
            oracles[i].commit(txn.txn_id, txn.commit_ts)
        cluster.replicate(i)

    def committed_slots(i):
        table = cluster.table_for(i)
        if not table.nrows:
            return np.zeros(0, dtype=np.int64)
        now = cluster.manager_for(i).now
        return np.flatnonzero(visible_mask(table.begin_ts, table.end_ts, now))

    def mutate(delete: bool):
        i = int(rng.integers(0, len(oracles)))
        live = committed_slots(i)
        if not len(live):
            return
        target = int(rng.choice(live))
        manager = cluster.manager_for(i)
        table = cluster.table_for(i)
        txn = manager.begin()
        oracles[i].begin(txn.txn_id)
        try:
            if delete:
                txn.delete(table, target)
                oracles[i].delete(txn.txn_id, target)
            else:
                status = min(int(table.row(target)["o_status"]) + 1, 2)
                new_slot = txn.update(table, target, {"o_status": status})
                oracles[i].update(txn.txn_id, target, table.row(new_slot))
            manager.commit(txn)
            oracles[i].commit(txn.txn_id, txn.commit_ts)
        except WriteConflictError:
            oracles[i].abort(txn.txn_id)
        cluster.replicate(i)

    for _ in range(n_txns):
        roll = rng.random()
        if roll < 0.6:
            routed_insert()
        elif roll < 0.85:
            mutate(delete=False)
        else:
            mutate(delete=True)
    return cluster, oracles


@dataclass
class ShardKillChaosReport:
    """Outcome of one shard-kill chaos run (the CI artifact)."""

    seed: int
    txns: int
    shards: int = 0
    rows: int = 0
    kills: int = 0
    queries: int = 0
    restarts: int = 0
    recoveries: int = 0
    recovered_bytes: int = 0
    stale_fences: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    partial_probes: int = 0
    identity_checks: int = 0
    violations: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {**self.__dict__, "passed": self.passed}


def run_shard_kill_chaos(
    seed: int,
    n_txns: int = 120,
    lineitem_rows: int = 20_000,
    recorder=None,
) -> ShardKillChaosReport:
    """The scatter-gather suite: kill a shard at every scatter boundary.

    Four scenarios, all seeded and all judged against independent
    oracles:

    1. **kill-rotation** — run the seeded write mix, then for *every*
       shard in turn: SIGKILL its worker and immediately query. The
       coordinator must restart the fault domain, recover it from its
       WAL, and return an answer equal to the per-shard
       :class:`ShadowOracle` brute force AND byte-identical to the
       coordinator's serial reference.
    2. **persistent kill** — one shard crashes on every request of every
       incarnation. The query must degrade to a *typed* partial:
       ``missing_ranges`` exactly the dead shard's key range, and the
       partial answer equal to the oracle restricted to the surviving
       ranges. The non-degraded path must raise
       :class:`~repro.errors.PartialResultError` with the same payload.
    3. **stall + hedge** — one shard's first incarnation stalls past the
       hedge trigger; the hedged incarnation must win and the answer
       stay oracle-equal.
    4. **unkilled bit-identity** — TPC-H Q1 and Q6 over a bench-mode
       lineitem cluster at 2 and 8 shards must be byte-identical to
       unsharded serial execution, payload and ledger buckets both.
    """
    from repro.db.sharding import ShardedTable
    from repro.dist import (
        DistConfig,
        DistPlan,
        AggSpec,
        AggTerm,
        DistPredicate,
        ShardCluster,
        execute_plan,
        q1_plan,
        q6_plan,
    )
    from repro.errors import PartialResultError
    from repro.faults import SHARD_CRASH, SHARD_STALL
    from repro.workloads.tpch import generate_lineitem

    t0 = time.perf_counter()
    report = ShardKillChaosReport(seed=seed, txns=n_txns)
    schema = orders_schema()
    from repro.core.selection import CompareOp

    plan = DistPlan(
        table="orders",
        key_column="o_id",
        predicates=(DistPredicate("o_customer", CompareOp.LE, 40),),
        group_by=("o_status",),
        aggregates=(
            AggSpec("sum_amount", "sum", (AggTerm("o_amount"),)),
            AggSpec("max_amount", "max", (AggTerm("o_amount"),)),
            AggSpec("n", "count"),
        ),
    )

    def oracle_answer(cluster, oracles, the_plan, missing=()):
        ts = cluster.default_snapshot()
        rows = [r for o in oracles for r in o.visible(ts)]
        rows = [
            r
            for r in rows
            if not _in_missing(int(dict(r)[the_plan.key_column]), missing)
        ]
        return _oracle_groups(schema, the_plan, rows)

    # 1. Kill-rotation: every shard dies once, at a scatter boundary.
    cluster, oracles = _shard_kill_cluster(
        seed, n_txns, DistConfig(deadline_s=5.0), recorder=recorder
    )
    try:
        report.shards = len(cluster.sharded.shards)
        report.rows = cluster.sharded.nrows
        expected = oracle_answer(cluster, oracles, plan)
        serial = cluster.run_serial(plan)
        if serial.groups != expected:
            report.violations.append(
                "serial reference disagrees with the shadow oracle before "
                "any kill"
            )
        for k in range(report.shards):
            cluster.kill_shard(k)
            report.kills += 1
            res = cluster.query(plan)
            report.queries += 1
            if res.groups != expected:
                report.violations.append(
                    f"kill shard {k}: recovered answer != oracle"
                )
            if res.to_bytes() != serial.to_bytes():
                report.violations.append(
                    f"kill shard {k}: payload not byte-identical to serial"
                )
            if res.degraded:
                report.violations.append(
                    f"kill shard {k}: degraded despite a healthy retry path"
                )
        s = cluster.stats
        if s.restarts_total < report.shards:
            report.violations.append(
                f"only {s.restarts_total} restarts after {report.kills} kills"
            )
        report.restarts = s.restarts_total
        report.recoveries = s.recoveries_total
        report.recovered_bytes = s.recovered_bytes_total
        report.stale_fences = s.stale_fences_total
    finally:
        cluster.close()

    # 2. Persistent kill: typed degradation with oracle-exact ranges.
    dead_shard = seed % 4
    cluster, oracles = _shard_kill_cluster(
        seed,
        n_txns,
        DistConfig(
            deadline_s=1.0,
            retries=1,
            fault_rates={SHARD_CRASH: 1.0},
            fault_shards=frozenset({dead_shard}),
        ),
        recorder=recorder,
    )
    try:
        lo, hi = cluster.sharded.shard_bounds(dead_shard)
        res = cluster.query(plan, allow_partial=True)
        report.queries += 1
        report.partial_probes += 1
        if not res.degraded or res.missing_ranges != ((lo, hi),):
            report.violations.append(
                f"persistent kill of shard {dead_shard}: expected missing "
                f"range {((lo, hi),)}, got degraded={res.degraded} "
                f"missing={res.missing_ranges}"
            )
        expected_partial = oracle_answer(
            cluster, oracles, plan, missing=res.missing_ranges
        )
        if res.groups != expected_partial:
            report.violations.append(
                "persistent kill: partial answer != oracle over the "
                "surviving ranges"
            )
        try:
            cluster.query(plan)
            report.violations.append(
                "persistent kill: non-partial query did not raise "
                "PartialResultError"
            )
        except PartialResultError as exc:
            report.queries += 1
            if exc.missing_ranges != ((lo, hi),):
                report.violations.append(
                    f"PartialResultError ranges {exc.missing_ranges} != "
                    f"{((lo, hi),)}"
                )
            if exc.partial is None or exc.partial.groups != expected_partial:
                report.violations.append(
                    "PartialResultError.partial != oracle over the "
                    "surviving ranges"
                )
    finally:
        cluster.close()

    # 3. Stall + hedge: the first incarnation sleeps past the trigger.
    stalled_shard = (seed + 1) % 4
    cluster, oracles = _shard_kill_cluster(
        seed,
        n_txns,
        DistConfig(
            deadline_s=5.0,
            hedge_after_s=0.1,
            stall_s=1.5,
            fault_rates={SHARD_STALL: 1.0},
            fault_max=1,
            fault_shards=frozenset({stalled_shard}),
            fault_incarnations=frozenset({0}),
        ),
        recorder=recorder,
    )
    try:
        expected = oracle_answer(cluster, oracles, plan)
        res = cluster.query(plan)
        report.queries += 1
        if res.groups != expected:
            report.violations.append("stall+hedge: answer != oracle")
        report.hedges = cluster.stats.hedges_total
        report.hedge_wins = cluster.stats.hedge_wins_total
        if cluster.stats.hedge_wins_total < 1:
            report.violations.append(
                "stall+hedge: hedged incarnation never won"
            )
    finally:
        cluster.close()

    # 4. Unkilled bit-identity: Q1/Q6 at 2 and 8 shards vs serial.
    _, lineitem = generate_lineitem(lineitem_rows, seed=seed)
    keys = lineitem.column("l_orderkey")
    for nshards in (2, 8):
        qs = np.linspace(0, 1, nshards + 1)[1:-1]
        bounds = sorted({int(np.quantile(keys, q)) for q in qs})
        sharded = ShardedTable(lineitem.schema, "l_orderkey", bounds)
        sharded.bulk_load(
            {
                c.name: (
                    lineitem.column(c.name)
                    .view(f"S{c.dtype.width}")
                    .reshape(-1)
                    if c.dtype.np_dtype is None
                    else lineitem.column(c.name)
                )
                for c in lineitem.schema.user_columns
            }
        )
        with ShardCluster(sharded, DistConfig(deadline_s=10.0)) as bench:
            for name, qplan in (("q1", q1_plan()), ("q6", q6_plan())):
                serial_ref = execute_plan(lineitem, qplan)
                res = bench.query(qplan)
                report.queries += 1
                report.identity_checks += 1
                if res.to_bytes() != serial_ref.to_bytes():
                    report.violations.append(
                        f"{name}@{nshards} shards: payload differs from "
                        "serial"
                    )
                if res.ledger.buckets != serial_ref.ledger.buckets:
                    report.violations.append(
                        f"{name}@{nshards} shards: ledger buckets differ "
                        "from serial"
                    )

    report.seconds = time.perf_counter() - t0
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="chaos suites: WAL crash points, serving-layer "
        "overload, or shard-kill scatter-gather"
    )
    parser.add_argument(
        "--mode",
        choices=("wal", "overload", "shard-kill", "sql-fuzz"),
        default="wal",
        help="wal = crash-point recovery suite; overload = multi-tenant "
        "serving storm with the serve.* fault sites armed; shard-kill = "
        "scatter-gather with worker kills, hedges, and typed partials; "
        "sql-fuzz = differential SQL fuzzing (engines vs oracle vs dist) "
        "plus crash points over the SQL-issued WAL",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--horizon",
        type=float,
        default=40_000_000.0,
        help="overload mode: offered-load horizon in simulated cycles",
    )
    parser.add_argument("--txns", type=int, default=200)
    parser.add_argument("--torn", type=int, default=64, help="random torn offsets")
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        help="also checkpoint every N txns (0 = no checkpoints)",
    )
    parser.add_argument(
        "--vacuum-every",
        type=int,
        default=80,
        help="compacting vacuum (+checkpoint) every N txns (0 = never)",
    )
    parser.add_argument("--json", type=str, default="", help="write the report here")
    parser.add_argument(
        "--steps",
        type=int,
        default=80,
        help="sql-fuzz mode: statements per seeded stream",
    )
    parser.add_argument(
        "--journal",
        type=str,
        default="",
        help="flight-recorder dump path — the run records fault-handling "
        "decisions into a bounded ring and dumps it as journal/v1 JSON "
        "when any invariant fails (shard-kill and sql-fuzz modes)",
    )
    args = parser.parse_args(argv)

    recorder = None
    if args.journal:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(
            capacity=4096, auto_dump_path=args.journal
        )

    if args.mode == "sql-fuzz":
        # Imported lazily: the fuzz harness pulls in the SQL pipeline and
        # dist stack, which the other chaos modes never need.
        from repro.db.sql.fuzz import run_sql_fuzz

        freport = run_sql_fuzz(
            args.seed, steps=args.steps, crash_points=args.torn,
            recorder=recorder,
        )
        print(
            f"sql-fuzz chaos seed={freport.seed}: {freport.steps} steps — "
            f"{freport.selects} selects ({freport.subquery_selects} with "
            f"subqueries, {freport.dist_checked} dist-checked, "
            f"{freport.rows_checked} rows), {freport.dml_statements} DML, "
            f"{freport.txn_blocks} txn blocks ({freport.rollbacks} "
            f"rollbacks), {freport.commits} commits, "
            f"{freport.crash_boundary_points} boundary + "
            f"{freport.crash_torn_points} torn crash points, "
            f"{len(freport.violations)} violations, {freport.seconds:.1f}s"
        )
        for v in freport.violations[:20]:
            print(f"  VIOLATION: {v}", file=sys.stderr)
        if args.json:
            with open(args.json, "w") as f:
                json.dump(freport.to_dict(), f, indent=2)
            print(f"wrote {args.json}")
        if recorder is not None and not freport.passed:
            recorder.auto_dump(
                f"sql-fuzz chaos seed={freport.seed}: "
                f"{len(freport.violations)} violations"
            )
            print(f"wrote flight-recorder dump {recorder.last_dump_path}")
        return 0 if freport.passed else 1

    if args.mode == "shard-kill":
        kreport = run_shard_kill_chaos(
            args.seed, n_txns=args.txns, recorder=recorder
        )
        print(
            f"shard-kill chaos seed={kreport.seed}: {kreport.txns} txns over "
            f"{kreport.shards} shards ({kreport.rows} rows) — "
            f"{kreport.kills} kills, {kreport.queries} queries, "
            f"{kreport.restarts} restarts, {kreport.recoveries} recoveries "
            f"({kreport.recovered_bytes} WAL bytes), "
            f"{kreport.stale_fences} stale fences, "
            f"{kreport.hedge_wins}/{kreport.hedges} hedge wins, "
            f"{kreport.partial_probes} partial probes, "
            f"{kreport.identity_checks} identity checks, "
            f"{len(kreport.violations)} violations, {kreport.seconds:.1f}s"
        )
        for v in kreport.violations[:20]:
            print(f"  VIOLATION: {v}", file=sys.stderr)
        if args.json:
            with open(args.json, "w") as f:
                json.dump(kreport.to_dict(), f, indent=2)
            print(f"wrote {args.json}")
        if recorder is not None and not kreport.passed:
            recorder.auto_dump(
                f"shard-kill chaos seed={kreport.seed}: "
                f"{len(kreport.violations)} violations"
            )
            print(f"wrote flight-recorder dump {recorder.last_dump_path}")
        return 0 if kreport.passed else 1

    if args.mode == "overload":
        oreport = run_overload_chaos(args.seed, horizon_cycles=args.horizon)
        print(
            f"overload chaos seed={oreport.seed}: {oreport.requests} requests "
            f"over {oreport.horizon_cycles:.0f} cycles — "
            f"{oreport.completed} completed, {oreport.degraded} degraded, "
            f"{oreport.throttled} throttled, {oreport.shed} shed, "
            f"{oreport.expired} expired; OLTP p99 "
            f"{oreport.oltp_p99_cycles:.0f} (bound "
            f"{oreport.oltp_p99_bound_cycles:.0f}), hostile rejections "
            f"{oreport.hostile_rejections}, faults {oreport.faults_fired}, "
            f"{len(oreport.violations)} violations, {oreport.seconds:.1f}s"
        )
        for v in oreport.violations[:20]:
            print(f"  VIOLATION: {v}", file=sys.stderr)
        if args.json:
            with open(args.json, "w") as f:
                json.dump(oreport.to_dict(), f, indent=2)
            print(f"wrote {args.json}")
        return 0 if oreport.passed else 1

    report = run_chaos(
        args.seed,
        n_txns=args.txns,
        torn_offsets=args.torn,
        checkpoint_every=args.checkpoint_every or None,
        vacuum_every=args.vacuum_every or None,
    )
    print(
        f"chaos seed={report.seed}: {report.boundary_points} boundary + "
        f"{report.torn_points} torn crash points over {report.log_bytes} log bytes "
        f"({report.records} records, {report.commits} commits, "
        f"{report.conflicts} conflicts, {report.vacuums} vacuums), "
        f"{report.corruption_detected}/{report.corruption_probes} corruptions "
        f"detected, {len(report.violations)} violations, {report.seconds:.1f}s"
    )
    for v in report.violations[:20]:
        print(f"  VIOLATION: {v}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as f:
            json.dump(report.to_dict(), f, indent=2)
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


if __name__ == "__main__":
    sys.exit(main())
