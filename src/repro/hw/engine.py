"""Cost model of the Relational Memory engine in programmable logic.

The engine implements the four operations of paper Section IV-A:

1. receive the access stride of the query and issue parallel DRAM
   requests for the target bytes (bank-level parallelism),
2. move the data over an AXI bus and assemble multiple entries into
   packed cache lines,
3. capture the CPU's reads of the ephemeral variable, and
4. return the reorganized lines on availability.

Stages 1-2 (produce) and 3-4 (consume) are pipelined against the CPU, so
a query's end-to-end cost is ``configure + max(produce, consume) +
refill stalls``; this module prices the produce side and the stalls, the
consuming engine prices its own side.

Functional transformation (the actual bytes) lives in
:mod:`repro.core.packer`; this module accounts cycles only, keeping the
what and the how-long of the hardware separable and separately testable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.faults import DEVICE_TIMEOUT, FABRIC_REFILL, FaultInjector
from repro.hw.bus import AxiBus, AxiConfig
from repro.hw.config import PlatformConfig


@dataclass(frozen=True)
class RmTransformReport:
    """Where the fabric-side cycles of one ephemeral access went."""

    nrows: int
    out_bytes: int
    out_lines: int
    #: CPU cycles for the engine to produce all packed lines (pipelined
    #: bound: max of pack, DRAM-gather and bus stage throughput).
    produce_cycles: float
    #: CPU cycles of CPU-visible stall while the on-fabric buffer refills.
    refill_stall_cycles: float
    #: One-off CPU cycles to program the geometry registers.
    configure_cycles: float
    #: Bytes the engine itself pulled from DRAM (≥ out_bytes: the fabric
    #: touches whole bursts around scattered fields).
    dram_bytes_touched: float
    refills: int

    @property
    def overhead_cycles(self) -> float:
        return self.refill_stall_cycles + self.configure_cycles


class RelationalMemoryEngineModel:
    """Prices on-the-fly row→column-group transformation in the fabric."""

    def __init__(
        self,
        platform: PlatformConfig,
        axi: Optional[AxiConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        platform.validate()
        self.platform = platform
        self.rm = platform.rm
        self.bus = AxiBus(axi or AxiConfig())
        self._clock_ratio = self.rm.clock_ratio(platform.cpu)
        self._line_bytes = platform.l1.line_bytes
        #: Optional chaos hook; ``None`` means a perfectly reliable engine.
        self.fault_injector = fault_injector
        # Cumulative activity counters, PMU-style: one increment per
        # transform (coarse-grained), read by repro.obs.collectors.
        self.transforms = 0
        self.total_out_bytes = 0
        self.total_produce_cycles = 0.0
        self.total_stall_cycles = 0.0
        self.total_refills = 0
        self.total_dram_bytes = 0.0
        self.last_out_bytes = 0

    def transform(
        self,
        nrows: int,
        row_stride: int,
        out_bytes_per_row: int,
        qualifying_rows: Optional[int] = None,
        mvcc_filter: bool = False,
        fabric_predicates: int = 0,
    ) -> RmTransformReport:
        """Price one ephemeral column-group access.

        ``out_bytes_per_row`` is the packed width of the requested column
        group. ``qualifying_rows`` (with ``fabric_predicates`` > 0 or
        ``mvcc_filter``) models selection/visibility pushed into the
        fabric: all rows are inspected, only qualifiers are emitted.
        """
        if out_bytes_per_row <= 0 or out_bytes_per_row > row_stride:
            raise ConfigurationError(
                f"packed row width {out_bytes_per_row} outside (0, {row_stride}]"
            )
        if nrows < 0:
            raise ConfigurationError(f"row count must be >= 0, got {nrows}")
        if qualifying_rows is not None and not 0 <= qualifying_rows <= nrows:
            raise ConfigurationError(
                f"qualifying_rows {qualifying_rows} outside [0, {nrows}]"
            )
        if self.fault_injector is not None and self.fault_injector.armed:
            self.fault_injector.check(DEVICE_TIMEOUT, detail="AXI gather")
        emitted = nrows if qualifying_rows is None else qualifying_rows
        out_bytes = emitted * out_bytes_per_row
        out_lines = math.ceil(out_bytes / self._line_bytes) if out_bytes else 0

        # Per-row fabric work: stride generation, field steering, plus any
        # pushed-down comparisons (MVCC visibility is two timestamp
        # compares wired in parallel: one fabric cycle flat).
        per_row_fabric = self.rm.gather_row_fabric_cycles
        if mvcc_filter:
            per_row_fabric += 1.0 / 16  # amortized: 16 comparators in parallel
        per_row_fabric += fabric_predicates * (1.0 / 8)

        pack_fabric = out_lines * self.rm.line_fabric_cycles + nrows * per_row_fabric
        bus_fabric = self.bus.scatter_cycles(nrows, out_bytes_per_row)
        pack_cpu = pack_fabric * self._clock_ratio
        bus_cpu = bus_fabric * self._clock_ratio

        # DRAM-side gather: the engine touches the needed bytes of every
        # row; whole-burst granularity rounds narrow groups up to one AXI
        # beat per row.
        beat = self.bus.config.data_bytes_per_beat
        touched_per_row = math.ceil(out_bytes_per_row / beat) * beat
        touched_per_row = min(touched_per_row, row_stride)
        dram_bytes = nrows * touched_per_row
        dram_lines = dram_bytes / self._line_bytes
        dram_cpu = dram_lines * self.platform.dram.row_hit_cycles / self.platform.dram.banks

        produce = max(pack_cpu, bus_cpu, dram_cpu)

        refills = max(0, math.ceil(out_bytes / self.rm.buffer_bytes) - 1) if out_bytes else 0
        stall = refills * self.rm.refill_stall_cycles
        if refills and self.fault_injector is not None and self.fault_injector.armed:
            self.fault_injector.check(FABRIC_REFILL, detail=f"{refills} refills")

        self.transforms += 1
        self.total_out_bytes += out_bytes
        self.total_produce_cycles += produce
        self.total_stall_cycles += stall
        self.total_refills += refills
        self.total_dram_bytes += dram_bytes
        self.last_out_bytes = out_bytes

        return RmTransformReport(
            nrows=nrows,
            out_bytes=out_bytes,
            out_lines=out_lines,
            produce_cycles=produce,
            refill_stall_cycles=stall,
            configure_cycles=self.rm.configure_cycles,
            dram_bytes_touched=dram_bytes,
            refills=refills,
        )
