"""Event-accurate set-associative cache with LRU replacement.

Used by the trace-mode memory hierarchy (:mod:`repro.hw.hierarchy`) and by
unit/property tests. The benchmark harness uses the closed-form model in
:mod:`repro.hw.analytic` for large scans; the two are kept honest by
property tests asserting agreement on small traces.

Addresses are plain integers (byte addresses). The cache operates on line
granularity and never stores data — only presence — because data movement
is simulated, not emulated; the actual bytes live in the table frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.hw.config import CacheConfig


@dataclass
class CacheStats:
    """Counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Lines installed that were never hit again before eviction. This is
    #: the quantitative form of the paper's "cache pollution with
    #: unnecessary attributes" (its Figure 2).
    polluted_evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.polluted_evictions += other.polluted_evictions


@dataclass
class _Line:
    tag: int
    last_use: int
    use_count: int = 0
    dirty: bool = False


class Cache:
    """One set-associative, write-back, write-allocate cache level."""

    def __init__(self, config: CacheConfig):
        config.validate()
        self.config = config
        self.stats = CacheStats()
        # Invariant: each set dict stays in ascending-last_use order (ticks
        # are unique per cache), so iteration order IS the LRU order. Every
        # writer — here and in repro.hw.batch — must preserve it.
        self._sets: List[Dict[int, _Line]] = [{} for _ in range(config.num_sets)]
        self._tick = 0
        self._set_mask = config.num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1

    def line_of(self, addr: int) -> int:
        """Line number containing byte address ``addr``."""
        return addr >> self._line_shift

    def _index_tag(self, line: int) -> tuple:
        return line & self._set_mask, line >> (self._set_mask.bit_length())

    def access_line(self, line: int, write: bool = False) -> bool:
        """Access one line; returns True on hit.

        On miss the line is installed, evicting the LRU victim when the
        set is full.
        """
        self._tick += 1
        index, tag = self._index_tag(line)
        cset = self._sets[index]
        entry = cset.get(tag)
        if entry is not None:
            self.stats.hits += 1
            # Move-to-end keeps dict order == ascending last_use, so the
            # LRU victim below is always the first key — O(1), not a scan.
            del cset[tag]
            cset[tag] = entry
            entry.last_use = self._tick
            entry.use_count += 1
            entry.dirty = entry.dirty or write
            return True
        self.stats.misses += 1
        if len(cset) >= self.config.ways:
            victim_tag = next(iter(cset))
            victim = cset.pop(victim_tag)
            self.stats.evictions += 1
            if victim.use_count == 0:
                self.stats.polluted_evictions += 1
        cset[tag] = _Line(tag=tag, last_use=self._tick, dirty=write)
        return False

    def access(self, addr: int, write: bool = False) -> bool:
        """Access the line containing byte address ``addr``."""
        return self.access_line(self.line_of(addr), write=write)

    def contains_line(self, line: int) -> bool:
        """True if the line is currently cached (does not touch LRU state)."""
        index, tag = self._index_tag(line)
        return tag in self._sets[index]

    def flush(self) -> int:
        """Drop every line; returns how many were resident."""
        count = sum(len(s) for s in self._sets)
        self._sets = [{} for _ in range(self.config.num_sets)]
        return count

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)
