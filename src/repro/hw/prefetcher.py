"""Stream prefetcher model with a bounded number of concurrent streams.

The Cortex-A53 prefetcher detects sequential (small-stride) miss streams
and, once trained, fetches ahead so a covered stream observes amortized
bandwidth cost instead of full memory latency. Crucially for the paper's
argument, only a handful of streams (four) can be tracked at once: a
column-store scan touching more columns than that degrades to demand
misses, and a row-store scan of a narrow column with a large stride is
never prefetched at all.

The model answers one question per line access: *would this access have
been covered by the prefetcher?* Timing is attached by the hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hw.config import PrefetcherConfig


@dataclass
class _Stream:
    next_line: int
    stride_lines: int
    trained: bool
    hits: int
    last_use: int


class StreamPrefetcher:
    """Tracks up to ``max_streams`` sequential line streams, LRU-replaced."""

    def __init__(self, config: PrefetcherConfig, line_bytes: int = 64):
        self.config = config
        self.line_bytes = line_bytes
        self._streams: Dict[int, _Stream] = {}
        self._next_id = 0
        self._tick = 0
        self.covered = 0
        self.uncovered = 0

    @property
    def active_streams(self) -> int:
        return len(self._streams)

    def reset(self) -> None:
        self._streams.clear()
        self.covered = 0
        self.uncovered = 0

    def observe_miss(self, line: int, stride_bytes: int = 0) -> bool:
        """Record a demand miss on ``line``; returns True if a trained
        stream had already prefetched it (miss converted to coverage).

        ``stride_bytes`` is a hint for strides that exceed the line size;
        the hardware equivalent infers it from the miss address deltas.
        """
        self._tick += 1
        if stride_bytes > self.config.max_stride_bytes:
            self.uncovered += 1
            return False
        stride_lines = max(1, stride_bytes // self.line_bytes) if stride_bytes else 1

        matched: Optional[int] = None
        for sid, stream in self._streams.items():
            if stream.next_line == line and stream.stride_lines == stride_lines:
                matched = sid
                break
        if matched is not None:
            stream = self._streams[matched]
            stream.next_line = line + stream.stride_lines
            stream.hits += 1
            stream.last_use = self._tick
            if stream.trained:
                self.covered += 1
                return True
            if stream.hits >= self.config.train_lines:
                # This access completes training but was itself a demand
                # miss; coverage starts with the next line.
                stream.trained = True
            self.uncovered += 1
            return False

        self._allocate(line, stride_lines)
        self.uncovered += 1
        return False

    def _allocate(self, line: int, stride_lines: int) -> None:
        if len(self._streams) >= self.config.max_streams:
            victim = min(self._streams, key=lambda s: self._streams[s].last_use)
            del self._streams[victim]
        self._streams[self._next_id] = _Stream(
            next_line=line + stride_lines,
            stride_lines=stride_lines,
            trained=False,
            hits=1,
            last_use=self._tick,
        )
        self._next_id += 1

    def covered_stream_count(self, requested: int) -> int:
        """How many of ``requested`` concurrent sequential streams the
        prefetcher can cover — the analytic model's view of this unit."""
        return min(requested, self.config.max_streams)
