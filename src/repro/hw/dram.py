"""DRAM device model: banks, open-row policy, bank-level parallelism.

Two usage modes:

* **Event mode** — :meth:`Dram.access_line` costs one access at a time,
  honouring open rows per bank. Used by the trace-mode hierarchy and by
  the RM engine's fabric-side fetch accounting in tests.
* **Batch mode** — :meth:`Dram.batch_cost` prices a set of accesses with
  bank overlap, used by the analytic fast path.

The Relational Memory engine exploits *bank-level parallelism* when
gathering scattered column bytes (paper Section II: "exploits the inherent
parallelism of memory cells to efficiently access data in scattered
locations"); :meth:`gather_cost` models that path explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.hw.config import CACHE_LINE_BYTES, DramConfig


@dataclass
class DramStats:
    row_hits: int = 0
    row_misses: int = 0
    lines_transferred: int = 0

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    @property
    def bytes_transferred(self) -> int:
        return self.lines_transferred * CACHE_LINE_BYTES


class Dram:
    """A DRAM device with ``banks`` independent banks and open-row policy."""

    def __init__(self, config: DramConfig, line_bytes: int = CACHE_LINE_BYTES):
        self.config = config
        self.line_bytes = line_bytes
        self.stats = DramStats()
        self._open_rows: List[Optional[int]] = [None] * config.banks
        self._lines_per_row = config.row_bytes // line_bytes
        # Per-bank demand-access counters (PMU-style; read by
        # repro.obs.collectors, never on the hot path). Kept outside
        # DramStats so aggregate-stats equality checks stay unchanged.
        # Only bank-attributable accesses count here: access_line and
        # batch_cost know their bank; stream/gather costs are amortized
        # closed forms with no per-bank attribution in either the scalar
        # or the batched kernel (which must stay bit-identical).
        self.bank_row_hits: List[int] = [0] * config.banks
        self.bank_row_misses: List[int] = [0] * config.banks
        self.bank_lines: List[int] = [0] * config.banks

    def _bank_row(self, line: int) -> tuple:
        row = line // self._lines_per_row
        bank = row % self.config.banks
        return bank, row

    def access_line(self, line: int) -> int:
        """Cost, in CPU cycles, of one demand line access."""
        bank, row = self._bank_row(line)
        self.stats.lines_transferred += 1
        self.bank_lines[bank] += 1
        if self._open_rows[bank] == row:
            self.stats.row_hits += 1
            self.bank_row_hits[bank] += 1
            return self.config.row_hit_cycles
        self._open_rows[bank] = row
        self.stats.row_misses += 1
        self.bank_row_misses[bank] += 1
        return self.config.row_miss_cycles

    def stream_cost(self, lines: int) -> int:
        """Cost of ``lines`` sequential prefetch-covered line transfers."""
        self.stats.lines_transferred += lines
        self.stats.row_hits += lines
        return lines * self.config.stream_cycles_per_line

    def batch_cost(self, lines: Iterable[int]) -> int:
        """Cost of a batch of demand accesses with bank-level overlap.

        Accesses to distinct banks overlap; the batch costs the maximum
        per-bank serial cost rather than the sum.
        """
        per_bank: List[int] = [0] * self.config.banks
        for line in lines:
            bank, row = self._bank_row(line)
            self.stats.lines_transferred += 1
            self.bank_lines[bank] += 1
            if self._open_rows[bank] == row:
                self.stats.row_hits += 1
                self.bank_row_hits[bank] += 1
                per_bank[bank] += self.config.row_hit_cycles
            else:
                self._open_rows[bank] = row
                self.stats.row_misses += 1
                self.bank_row_misses[bank] += 1
                per_bank[bank] += self.config.row_miss_cycles
        return max(per_bank) if any(per_bank) else 0

    def gather_cost(self, touched_lines: int) -> float:
        """Fabric-side cost of gathering ``touched_lines`` scattered lines
        with perfect bank interleaving — the RM engine's access pattern.

        Scattered-but-dense row scans hit each DRAM row many times, so the
        per-line cost approaches the row-hit cost divided by bank overlap.
        """
        if touched_lines <= 0:
            return 0.0
        self.stats.lines_transferred += touched_lines
        self.stats.row_hits += touched_lines
        return touched_lines * self.config.row_hit_cycles / self.config.banks

    def reset(self) -> None:
        self.stats = DramStats()
        self._open_rows = [None] * self.config.banks
        self.bank_row_hits = [0] * self.config.banks
        self.bank_row_misses = [0] * self.config.banks
        self.bank_lines = [0] * self.config.banks
