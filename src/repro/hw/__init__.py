"""Hardware substrate simulators: caches, prefetcher, DRAM, bus, CPU cost
model, the Relational Memory fabric engine, and the platform presets that
tie them together."""

from repro.hw.analytic import AnalyticMemoryModel, MemoryModel, TraceMemoryModel
from repro.hw.bus import AxiBus, AxiConfig
from repro.hw.cache import Cache, CacheStats
from repro.hw.config import (
    CACHE_LINE_BYTES,
    CacheConfig,
    CpuConfig,
    DramConfig,
    PlatformConfig,
    PrefetcherConfig,
    RmConfig,
    TEST_PLATFORM,
    ZYNQ_ULTRASCALE,
    default_platform,
)
from repro.hw.cpu import CpuCostModel
from repro.hw.dram import Dram, DramStats
from repro.hw.engine import RelationalMemoryEngineModel, RmTransformReport
from repro.hw.hierarchy import MemoryHierarchy
from repro.hw.prefetcher import StreamPrefetcher

__all__ = [
    "AnalyticMemoryModel",
    "AxiBus",
    "AxiConfig",
    "CACHE_LINE_BYTES",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "CpuConfig",
    "CpuCostModel",
    "Dram",
    "DramConfig",
    "DramStats",
    "MemoryHierarchy",
    "MemoryModel",
    "PlatformConfig",
    "PrefetcherConfig",
    "RelationalMemoryEngineModel",
    "RmConfig",
    "RmTransformReport",
    "StreamPrefetcher",
    "TEST_PLATFORM",
    "TraceMemoryModel",
    "ZYNQ_ULTRASCALE",
    "default_platform",
]
