"""Trace-mode (event-accurate) memory hierarchy: CPU → L1 → L2 → DRAM.

Every access walks the real cache state, consults the stream prefetcher on
misses, and pays DRAM bank timing. This is the reference model: slow but
faithful. The closed-form :class:`repro.hw.analytic.AnalyticMemoryModel`
must agree with it on large cold scans (property-tested), and the
benchmark harness uses the analytic model for speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hw.cache import Cache, CacheStats
from repro.hw.config import PlatformConfig
from repro.hw.dram import Dram
from repro.hw.prefetcher import StreamPrefetcher


@dataclass
class AccessStats:
    """Aggregate traffic counters for one hierarchy instance."""

    cycles: int = 0
    accesses: int = 0
    dram_lines: int = 0

    @property
    def dram_bytes(self) -> int:
        return self.dram_lines * 64


class MemoryHierarchy:
    """An event-accurate two-level cache hierarchy over banked DRAM."""

    def __init__(self, platform: PlatformConfig):
        platform.validate()
        self.platform = platform
        self.l1 = Cache(platform.l1)
        self.l2 = Cache(platform.l2)
        self.dram = Dram(platform.dram, line_bytes=platform.l1.line_bytes)
        self.prefetcher = StreamPrefetcher(
            platform.prefetcher, line_bytes=platform.l1.line_bytes
        )
        self.stats = AccessStats()
        self._line_bytes = platform.l1.line_bytes

    def access(self, addr: int, write: bool = False, stride_hint: int = 0) -> int:
        """One byte-address access; returns its cost in CPU cycles."""
        line = self.l1.line_of(addr)
        return self.access_lines([line], write=write, stride_hint=stride_hint)

    def access_lines(
        self,
        lines: Sequence[int],
        write: bool = False,
        stride_hint: int = 0,
    ) -> int:
        """Access a sequence of line numbers; returns total CPU cycles."""
        total = 0
        for line in lines:
            total += self._access_line(line, write, stride_hint)
        self.stats.cycles += total
        self.stats.accesses += len(lines)
        return total

    def access_lines_batch(
        self,
        lines,
        write: bool = False,
        stride_hint: int = 0,
    ) -> int:
        """Vectorized :meth:`access_lines`: one numpy batch instead of a
        Python loop per line, with bit-identical stats, cycles and end
        state (see :mod:`repro.hw.batch`)."""
        from repro.hw.batch import hierarchy_access_lines_batch

        return hierarchy_access_lines_batch(
            self, lines, write=write, stride_hint=stride_hint
        )

    def _access_line(self, line: int, write: bool, stride_hint: int) -> int:
        if self.l1.access_line(line, write=write):
            return self.platform.l1.hit_cycles
        if self.l2.access_line(line, write=write):
            return self.platform.l2.hit_cycles
        # L2 miss: consult the prefetcher, then DRAM.
        self.stats.dram_lines += 1
        covered = self.prefetcher.observe_miss(line, stride_bytes=stride_hint)
        if covered:
            return self.dram.stream_cost(1)
        return self.platform.l2.hit_cycles + self.dram.access_line(line)

    def scan_region(
        self,
        base_addr: int,
        total_bytes: int,
        stride_bytes: int = 0,
        touched_per_row: int = 0,
        write: bool = False,
    ) -> int:
        """Walk a region the way a scan would and return its cycle cost.

        With ``stride_bytes == 0`` the region is read sequentially line by
        line. Otherwise one access of ``touched_per_row`` bytes is made
        every ``stride_bytes``, modelling a strided row-scan of a narrow
        column group.
        """
        if total_bytes <= 0:
            return 0
        if stride_bytes <= 0:
            first = self.l1.line_of(base_addr)
            last = self.l1.line_of(base_addr + total_bytes - 1)
            lines = range(first, last + 1)
            return self.access_lines(list(lines), write=write, stride_hint=self._line_bytes)
        total = 0
        touched = max(1, touched_per_row)
        addr = base_addr
        end = base_addr + total_bytes
        while addr < end:
            first = self.l1.line_of(addr)
            last = self.l1.line_of(addr + touched - 1)
            total += self.access_lines(
                list(range(first, last + 1)), write=write, stride_hint=stride_bytes
            )
            addr += stride_bytes
        return total

    def flush(self) -> None:
        """Drop all cached state (cold-cache experiments)."""
        self.l1.flush()
        self.l2.flush()
        self.prefetcher.reset()

    def level_stats(self) -> dict:
        """Per-level counters, for reports and tests."""
        return {
            "l1": self.l1.stats,
            "l2": self.l2.stats,
            "dram": self.dram.stats,
            "prefetch_covered": self.prefetcher.covered,
            "prefetch_uncovered": self.prefetcher.uncovered,
        }

    def counters(self) -> dict:
        """Flat numeric snapshot of every hardware counter.

        This is the probe format :class:`repro.obs.Tracer` spans consume:
        snapshotted at span open, diffed at close, so each span carries
        exactly the cache/prefetcher/DRAM activity of its own work.
        """
        return {
            "l1_hits": self.l1.stats.hits,
            "l1_misses": self.l1.stats.misses,
            "l2_hits": self.l2.stats.hits,
            "l2_misses": self.l2.stats.misses,
            "dram_row_hits": self.dram.stats.row_hits,
            "dram_row_misses": self.dram.stats.row_misses,
            "dram_lines": self.stats.dram_lines,
            "prefetch_covered": self.prefetcher.covered,
            "prefetch_uncovered": self.prefetcher.uncovered,
        }
