"""CPU cycle accounting for the in-order core model.

The query engines charge their compute work through this class so that
every per-operation constant lives in :class:`repro.hw.config.CpuConfig`
and cycle↔time conversion happens in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import CpuConfig


@dataclass
class CpuCostModel:
    """Stateless helper translating engine work items into CPU cycles."""

    config: CpuConfig

    # ------------------------------------------------------------------
    # Tuple-at-a-time (Volcano) costs — used by the row engine and by the
    # scalar loop over an ephemeral struct in the RM engine.
    # ------------------------------------------------------------------
    def volcano_tuples(self, n: int) -> float:
        """Per-tuple overhead of the ``next()`` call chain for ``n`` tuples."""
        return n * self.config.volcano_tuple_cycles

    def field_extracts(self, n_values: int) -> float:
        """Decoding ``n_values`` attribute values out of row storage."""
        return n_values * self.config.field_extract_cycles

    def predicates(self, n_evals: int, miss_fraction: float = 0.0) -> float:
        """``n_evals`` scalar predicate evaluations; ``miss_fraction`` of
        them suffer a branch mispredict."""
        cycles = n_evals * self.config.predicate_cycles
        cycles += n_evals * miss_fraction * self.config.branch_miss_cycles
        return cycles

    def branch_misses(self, n_tuples: int, selectivity: float) -> float:
        """One data-dependent branch per tuple (the WHERE ``if``); the
        mispredict rate follows how balanced the selection is."""
        fraction = min(selectivity, 1.0 - selectivity)
        return n_tuples * fraction * self.config.branch_miss_cycles

    def aggregate_updates(self, n: int) -> float:
        """``n`` scalar aggregate-accumulator updates."""
        return n * self.config.aggregate_update_cycles

    def function_calls(self, n: int) -> float:
        return n * self.config.function_call_cycles

    # ------------------------------------------------------------------
    # Column-at-a-time (vectorized) costs — used by the column engine.
    # ------------------------------------------------------------------
    def vector_ops(self, n_values: int) -> float:
        """Primitive applied to ``n_values`` values in a tight loop."""
        return n_values * self.config.vector_op_cycles

    def reconstructions(self, n_values: int) -> float:
        """Stitching ``n_values`` column values into output tuples — the
        tuple-materialization cost that grows with projectivity."""
        return n_values * self.config.col_reconstruct_cycles

    def intermediates(self, n_values: int) -> float:
        """Materializing ``n_values`` values of an intermediate vector."""
        return n_values * self.config.intermediate_value_cycles

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------
    def hash_probes(self, n: int) -> float:
        """Hash + bucket walk for ``n`` hash-table probes (group-by, join)."""
        return n * (self.config.function_call_cycles + 2 * self.config.vector_op_cycles)

    def seconds(self, cycles: float) -> float:
        """Convert cycles of this core to wall-clock seconds."""
        return cycles / self.config.freq_hz
