"""Vectorized batch kernel for the trace-mode memory hierarchy.

The scalar reference path (:meth:`repro.hw.hierarchy.MemoryHierarchy.access_lines`)
pays one Python dict transaction per cache line, which caps the
event-accurate model at toy trace sizes. This module simulates the same
hardware — set-associative LRU caches, the bounded stream prefetcher and
banked open-row DRAM — over whole numpy arrays of line addresses at once,
producing **bit-identical** stats, cycles and end state.

The algorithm exploits three structural facts of the hardware:

* **Caches have no cross-set coupling.** Accesses are grouped by cache
  set (a stable argsort — or a strided slice when the batch is one
  contiguous ascending run); per-set subsequences are simulated
  independently. Within a set, the dominant pattern — every tag distinct
  and none initially resident (a cold scan of a fresh region) — has a
  closed form: all accesses miss, evictions drain the set's LRU queue in
  a computable order (initial residents by age, then batch installs
  FIFO), and only the last ``ways`` installs survive. Groups that see
  re-references or warm lines fall back to an exact per-access loop that
  mirrors :meth:`repro.hw.cache.Cache.access_line` tick for tick.
* **The prefetcher only reacts to L2 misses, in stride runs.** The miss
  subsequence is segmented into maximal arithmetic runs; a run either
  continues one stream (coverage is then a closed form of the stream's
  training count) or allocates one. Runs that another same-stride stream
  could hijack mid-run (its ``next_line`` falls on a run element) replay
  through the scalar :meth:`~repro.hw.prefetcher.StreamPrefetcher.observe_miss`.
* **DRAM banks are independent.** Demand misses group by bank; a row hit
  is a comparison against the previous row in the same bank's
  subsequence, fully vectorized.

Because every fallback path replays the exact scalar logic, equality with
the scalar path holds for *arbitrary* traces (property-tested), while the
patterns the query engines emit (sequential, strided, lockstep
multi-stream, LCG random) stay on the vectorized fast paths.
"""

from __future__ import annotations

from itertools import islice
from typing import List, Optional, Tuple

import numpy as np

from repro.hw.cache import Cache, _Line
from repro.hw.dram import Dram
from repro.hw.prefetcher import StreamPrefetcher, _Stream

__all__ = [
    "batch_cache_access",
    "batch_dram_demand",
    "batch_prefetch",
    "hierarchy_access_lines_batch",
    "interleaved_lines",
    "lcg_states",
    "sequential_lines",
    "strided_lines",
]

#: The LCG multiplier/increment of :class:`repro.hw.analytic.TraceMemoryModel`.
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407
_U64 = np.uint64


# ----------------------------------------------------------------------
# Line-address array builders (the scan paths emit these).
# ----------------------------------------------------------------------
def sequential_lines(base_addr: int, total_bytes: int, line_bytes: int) -> np.ndarray:
    """Line numbers of a contiguous byte region, in scan order."""
    if total_bytes <= 0:
        return np.empty(0, dtype=np.int64)
    shift = line_bytes.bit_length() - 1
    first = base_addr >> shift
    last = (base_addr + total_bytes - 1) >> shift
    return np.arange(first, last + 1, dtype=np.int64)


def strided_lines(
    base_addr: int,
    nrows: int,
    stride_bytes: int,
    touched_per_row: int,
    line_bytes: int,
) -> np.ndarray:
    """Line numbers of a strided row walk (``touched_per_row`` bytes every
    ``stride_bytes``), in the exact order ``scan_region`` visits them."""
    if nrows <= 0:
        return np.empty(0, dtype=np.int64)
    shift = line_bytes.bit_length() - 1
    touched = max(1, touched_per_row)
    starts = base_addr + np.arange(nrows, dtype=np.int64) * stride_bytes
    firsts = starts >> shift
    lasts = (starts + touched - 1) >> shift
    counts = lasts - firsts + 1
    total = int(counts.sum())
    if total == nrows:  # no row crosses a line boundary (the common case)
        return firsts
    row_base = np.repeat(firsts, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return row_base + offsets


def interleaved_lines(cursors: List[int], nlines: List[int]) -> np.ndarray:
    """Lockstep round-robin interleave of ascending unit-stride streams:
    one line from each live stream per round — the order the scalar
    multi-stream loop produces."""
    if not cursors:
        return np.empty(0, dtype=np.int64)
    c = np.asarray(cursors, dtype=np.int64)
    ln = np.asarray(nlines, dtype=np.int64)
    max_len = int(ln.max())
    rounds = np.arange(max_len, dtype=np.int64)[:, None]
    grid = c[None, :] + rounds
    mask = rounds < ln[None, :]
    return grid[mask]  # row-major: round by round, stream by stream


def lcg_states(state0: int, n: int) -> np.ndarray:
    """The ``n`` successor states of the 64-bit LCG used by the trace
    model's random/gather walks, as a uint64 array (wraps mod 2**64)."""
    if n <= 0:
        return np.empty(0, dtype=_U64)
    powers = np.empty(n, dtype=_U64)
    powers[0] = 1
    if n > 1:
        with np.errstate(over="ignore"):
            powers[1:] = np.cumprod(np.full(n - 1, _LCG_A, dtype=_U64))
    with np.errstate(over="ignore"):
        geo = np.cumsum(powers, dtype=_U64)  # sum_{j<=k} a^j
        states = _U64(_LCG_A) * powers * _U64(state0 & (2**64 - 1)) + _U64(_LCG_C) * geo
    return states


# ----------------------------------------------------------------------
# Cache level: per-set grouping + cold closed form.
# ----------------------------------------------------------------------
def _set_groups(
    idx: np.ndarray, num_sets: int, contiguous: bool, lines: np.ndarray
) -> List[Tuple[int, np.ndarray]]:
    """Partition batch positions by cache set, preserving order.

    Returns ``(set_index, positions)`` pairs. For a contiguous ascending
    run the members of each set form a strided slice — no sort needed.
    """
    n = idx.size
    if contiguous:
        first = int(lines[0])
        return [
            (
                (first + p0) & (num_sets - 1),
                np.arange(p0, n, num_sets, dtype=np.int64),
            )
            for p0 in range(min(num_sets, n))
        ]
    order = np.argsort(idx, kind="stable").astype(np.int64, copy=False)
    sidx = idx[order]
    starts = np.flatnonzero(np.r_[True, sidx[1:] != sidx[:-1]])
    ends = np.r_[starts[1:], n]
    return [(int(sidx[s]), order[s:e]) for s, e in zip(starts, ends)]


def batch_cache_access(
    cache: Cache,
    lines: np.ndarray,
    write: bool,
    contiguous: bool,
    batch_distinct: bool,
) -> np.ndarray:
    """Access ``lines`` (in order) against one cache level; returns the
    per-access hit mask. State, stats and LRU ticks end bit-identical to
    per-access :meth:`~repro.hw.cache.Cache.access_line` calls."""
    n = lines.size
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits
    mask = cache._set_mask
    shift = mask.bit_length()
    idx = lines & mask
    tags = lines >> shift
    tick0 = cache._tick
    stats = cache.stats
    ways = cache.config.ways

    n_hits = 0
    n_miss = 0
    n_evict = 0
    n_polluted = 0

    for set_i, pos in _set_groups(idx, cache.config.num_sets, contiguous, lines):
        cset = cache._sets[set_i]
        t = tags[pos]
        m = t.size
        group_distinct = batch_distinct or m == 1 or np.unique(t).size == m
        disjoint = not cset
        if group_distinct and not disjoint:
            keys = np.fromiter(cset.keys(), dtype=np.int64, count=len(cset))
            disjoint = not bool(np.isin(t, keys, assume_unique=False).any())
        if group_distinct and disjoint:
            # Cold closed form: every access misses; evictions drain the
            # LRU queue — initial residents oldest-first, then batch
            # installs FIFO — and only the last `ways` installs survive.
            n_miss += m
            r0 = len(cset)
            excess = r0 + m - ways
            if excess > 0:
                n_evict += excess
                k0 = min(r0, excess)
                if k0:
                    # Set dicts stay in LRU order (see Cache._sets), so
                    # the k0 oldest residents are simply the first k0.
                    victims = list(islice(cset.items(), k0))
                    for vtag, vline in victims:
                        del cset[vtag]
                        if vline.use_count == 0:
                            n_polluted += 1
                n_polluted += excess - k0  # batch victims never re-hit
            surviving = min(ways - len(cset), m)
            for j in range(m - surviving, m):
                p = int(pos[j])
                cset[int(t[j])] = _Line(
                    tag=int(t[j]), last_use=tick0 + p + 1, dirty=write
                )
        else:
            # Exact replay of Cache.access_line, with the global tick of
            # each access recovered from its batch position.
            t_list = t.tolist()
            p_list = pos.tolist()
            cset_get = cset.get
            cset_pop = cset.pop
            for j in range(m):
                tag = t_list[j]
                p = p_list[j]
                tick = tick0 + p + 1
                entry = cset_get(tag)
                if entry is not None:
                    n_hits += 1
                    # Move-to-end: dict order stays the LRU order.
                    del cset[tag]
                    cset[tag] = entry
                    entry.last_use = tick
                    entry.use_count += 1
                    entry.dirty = entry.dirty or write
                    hits[p] = True
                    continue
                n_miss += 1
                if len(cset) >= ways:
                    victim = cset_pop(next(iter(cset)))
                    n_evict += 1
                    if victim.use_count == 0:
                        n_polluted += 1
                    # Recycle the victim object: same fields a fresh
                    # install would get, one allocation saved per miss.
                    victim.tag = tag
                    victim.last_use = tick
                    victim.use_count = 0
                    victim.dirty = write
                    cset[tag] = victim
                else:
                    cset[tag] = _Line(tag=tag, last_use=tick, dirty=write)

    cache._tick = tick0 + n
    stats.hits += n_hits
    stats.misses += n_miss
    stats.evictions += n_evict
    stats.polluted_evictions += n_polluted
    return hits


# ----------------------------------------------------------------------
# Prefetcher: stride-run segmentation.
# ----------------------------------------------------------------------
def batch_prefetch(
    pf: StreamPrefetcher, miss_lines: np.ndarray, stride_bytes: int
) -> np.ndarray:
    """Feed the L2-miss subsequence through the stream prefetcher; returns
    the per-miss coverage mask, bit-identical to per-access
    :meth:`~repro.hw.prefetcher.StreamPrefetcher.observe_miss` calls."""
    n = miss_lines.size
    covered = np.zeros(n, dtype=bool)
    if n == 0:
        return covered
    if stride_bytes > pf.config.max_stride_bytes:
        # Unprefetchable stride: no stream-table interaction at all.
        pf._tick += n
        pf.uncovered += n
        return covered
    stride = max(1, stride_bytes // pf.line_bytes) if stride_bytes else 1
    train = pf.config.train_lines
    max_streams = pf.config.max_streams

    starts = np.flatnonzero(
        np.r_[True, miss_lines[1:] != miss_lines[:-1] + stride]
    ).tolist()
    ends = starts[1:] + [n]
    line_list: Optional[List[int]] = None

    for s, e in zip(starts, ends):
        length = e - s
        start_line = int(miss_lines[s])
        streams = pf._streams
        matched_sid = None
        hijacked = False
        for sid, st in streams.items():
            if st.stride_lines != stride:
                continue
            if matched_sid is None and st.next_line == start_line:
                matched_sid = sid
                continue
            delta = st.next_line - start_line
            if stride <= delta <= (length - 1) * stride and delta % stride == 0:
                hijacked = True  # another stream sits on a mid-run line
                break
        if hijacked:
            if line_list is None:
                line_list = miss_lines.tolist()
            for i in range(s, e):
                covered[i] = pf.observe_miss(line_list[i], stride_bytes=stride_bytes)
            continue
        # Coverage closed form. Access k (0-based) of the run is covered
        # iff the stream was trained *before* it; training completes on
        # the match that brings hits to `train` (that access is itself a
        # demand miss), and an allocation never sets trained even when
        # train == 1 — so the first covered access is k = max(1, train -
        # h0) for a matched stream, k = max(2, train) for an allocation.
        if matched_sid is None:
            if len(streams) >= max_streams:
                victim = min(streams, key=lambda k: streams[k].last_use)
                del streams[victim]
            sid = pf._next_id
            pf._next_id += 1
            st = _Stream(
                next_line=0, stride_lines=stride, trained=False, hits=0, last_use=0
            )
            streams[sid] = st
            n_cov = max(0, length - max(2, train))
            st.trained = length >= 2 and length >= train
            st.hits = length
        else:
            st = streams[matched_sid]
            h0, trained0 = st.hits, st.trained
            n_cov = length if trained0 else max(0, length - max(1, train - h0))
            st.trained = trained0 or (h0 + length >= train)
            st.hits = h0 + length
        if n_cov:
            covered[e - n_cov : e] = True
        pf._tick += length
        pf.covered += n_cov
        pf.uncovered += length - n_cov
        st.next_line = start_line + length * stride
        st.last_use = pf._tick
    return covered


# ----------------------------------------------------------------------
# DRAM: per-bank grouping.
# ----------------------------------------------------------------------
def batch_dram_demand(dram: Dram, demand_lines: np.ndarray) -> int:
    """Cost of the demand (uncovered) line accesses, honouring open rows
    per bank; bit-identical to per-access
    :meth:`~repro.hw.dram.Dram.access_line` calls."""
    n = demand_lines.size
    if n == 0:
        return 0
    rows = demand_lines // dram._lines_per_row
    banks = rows % dram.config.banks
    order = np.argsort(banks, kind="stable")
    srows = rows[order]
    sbanks = banks[order]
    open0 = np.array(
        [-1 if r is None else r for r in dram._open_rows], dtype=np.int64
    )
    hit = np.empty(n, dtype=bool)
    if n > 1:
        hit[1:] = (srows[1:] == srows[:-1]) & (sbanks[1:] == sbanks[:-1])
    group_starts = np.flatnonzero(np.r_[True, sbanks[1:] != sbanks[:-1]])
    hit[group_starts] = srows[group_starts] == open0[sbanks[group_starts]]
    group_ends = np.r_[group_starts[1:], n] - 1
    for g_end in group_ends.tolist():
        dram._open_rows[int(sbanks[g_end])] = int(srows[g_end])
    row_hits = int(np.count_nonzero(hit))
    row_misses = n - row_hits
    dram.stats.row_hits += row_hits
    dram.stats.row_misses += row_misses
    dram.stats.lines_transferred += n
    # Per-bank counters, identical to what the scalar access_line loop
    # would have accumulated (read by repro.obs.collectors).
    nbanks = dram.config.banks
    per_bank_lines = np.bincount(sbanks, minlength=nbanks)
    per_bank_hits = np.bincount(sbanks[hit], minlength=nbanks)
    for b in range(nbanks):
        lines_b = int(per_bank_lines[b])
        if not lines_b:
            continue
        hits_b = int(per_bank_hits[b])
        dram.bank_lines[b] += lines_b
        dram.bank_row_hits[b] += hits_b
        dram.bank_row_misses[b] += lines_b - hits_b
    return row_hits * dram.config.row_hit_cycles + row_misses * dram.config.row_miss_cycles


# ----------------------------------------------------------------------
# The full hierarchy kernel.
# ----------------------------------------------------------------------
def hierarchy_access_lines_batch(
    hierarchy, lines, write: bool = False, stride_hint: int = 0
) -> int:
    """Batched equivalent of :meth:`MemoryHierarchy.access_lines`.

    Filters the batch through L1 then L2 (order-preserving), runs the L2
    misses through the prefetcher and prices covered lines at streaming
    cost and the rest at demand DRAM timing. Every counter — CacheStats
    per level, prefetcher coverage, DRAM stats, AccessStats — and the
    cycle total match the scalar loop exactly.
    """
    arr = np.ascontiguousarray(np.asarray(lines, dtype=np.int64))
    n = arr.size
    if n == 0:
        return 0
    platform = hierarchy.platform
    contiguous = n > 1 and bool(np.all(arr[1:] == arr[:-1] + 1))
    if contiguous or n == 1:
        distinct = True
    else:
        diffs = arr[1:] - arr[:-1]
        distinct = bool(np.all(diffs > 0)) or bool(np.all(diffs < 0))
        if not distinct:
            distinct = np.unique(arr).size == n

    l1_hits = batch_cache_access(hierarchy.l1, arr, write, contiguous, distinct)
    n_l1_hits = int(np.count_nonzero(l1_hits))
    miss1 = arr[~l1_hits]
    miss1_contig = contiguous and n_l1_hits == 0
    l2_hits = batch_cache_access(hierarchy.l2, miss1, write, miss1_contig, distinct)
    n_l2_hits = int(np.count_nonzero(l2_hits))
    miss2 = miss1[~l2_hits]

    hierarchy.stats.dram_lines += miss2.size
    covered = batch_prefetch(hierarchy.prefetcher, miss2, stride_hint)
    n_cov = int(np.count_nonzero(covered))
    demand = miss2[~covered]

    total = n_l1_hits * platform.l1.hit_cycles
    total += n_l2_hits * platform.l2.hit_cycles
    if n_cov:
        total += hierarchy.dram.stream_cost(n_cov)
    total += demand.size * platform.l2.hit_cycles
    total += batch_dram_demand(hierarchy.dram, demand)

    hierarchy.stats.cycles += total
    hierarchy.stats.accesses += n
    return int(total)
