"""Memory-cost models shared by every query engine.

Two interchangeable implementations of one small interface:

* :class:`AnalyticMemoryModel` — closed-form costs for *cold* scans whose
  working set exceeds the last-level cache. O(1) per scan, used by the
  benchmark harness where tables are far larger than L2.
* :class:`TraceMemoryModel` — drives the event-accurate
  :class:`repro.hw.hierarchy.MemoryHierarchy` access by access. Used by
  tests and small-data runs; property tests assert the analytic model
  agrees with it on large cold streams.

Every method returns a :class:`MemCost` splitting cycles into *covered*
(bandwidth-bound, prefetcher-hidden — an engine pays ``max(covered,
cpu_cycles)`` for a scan stage) and *exposed* (demand-miss latency an
in-order core cannot hide — always additive). Both models also count
DRAM traffic.

Known, documented divergence: for more concurrent streams than the
prefetcher tracks, the trace model's LRU stream table thrashes under
lockstep round-robin (no stream stays trained), while the analytic model
optimistically keeps ``max_streams`` covered — closer to real hardware,
where miss timing is less adversarial than an exact round-robin.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.hw import batch as hwbatch
from repro.hw.config import PlatformConfig
from repro.hw.hierarchy import MemoryHierarchy


@dataclass
class TrafficStats:
    """DRAM traffic attributed to one model instance."""

    dram_bytes: float = 0.0
    cycles: float = 0.0

    def add(self, dram_bytes: float, cycles: float) -> None:
        self.dram_bytes += dram_bytes
        self.cycles += cycles


@dataclass(frozen=True)
class MemCost:
    """Memory cycles split by overlappability.

    ``covered`` cycles are bandwidth-bound transfers the prefetcher hides
    behind computation (an engine pays ``max(covered, cpu)``); ``exposed``
    cycles are demand-miss latency an in-order core cannot hide (always
    added on top). The split is what lets CPU-heavy scans (TPC-H Q1) look
    alike across engines while movement-bound scans (Q6) diverge.
    """

    covered: float = 0.0
    exposed: float = 0.0

    @property
    def total(self) -> float:
        return self.covered + self.exposed

    def __add__(self, other: "MemCost") -> "MemCost":
        return MemCost(self.covered + other.covered, self.exposed + other.exposed)


ZERO_COST = MemCost()


class MemoryModel(ABC):
    """Cost interface the query engines program against."""

    def __init__(self, platform: PlatformConfig):
        platform.validate()
        self.platform = platform
        self.traffic = TrafficStats()
        self.line_bytes = platform.l1.line_bytes

    def reset_stats(self) -> None:
        self.traffic = TrafficStats()

    @abstractmethod
    def sequential(
        self, total_bytes: int, base_addr: int = 0, write: bool = False
    ) -> MemCost:
        """One contiguous prefetch-friendly stream of ``total_bytes``."""

    @abstractmethod
    def multi_stream(
        self, stream_bytes: Sequence[int], base_addrs: Optional[Sequence[int]] = None
    ) -> MemCost:
        """``len(stream_bytes)`` sequential streams progressing in lockstep
        (a column engine consuming several columns row-wise)."""

    @abstractmethod
    def strided(
        self,
        nrows: int,
        stride_bytes: int,
        touched_per_row: int,
        base_addr: int = 0,
    ) -> MemCost:
        """A row scan touching ``touched_per_row`` bytes every
        ``stride_bytes`` (narrow column group over wide rows)."""

    @abstractmethod
    def random(self, n_accesses: int, working_set_bytes: int) -> MemCost:
        """``n_accesses`` uniformly random accesses over a working set
        (hash tables, index probes)."""

    #: Fraction of a column's lines that must be touched before an
    #: ascending gather behaves like a prefetchable stream.
    GATHER_STREAM_THRESHOLD = 0.5

    def gather(
        self,
        n_candidates: int,
        n_rows: int,
        value_bytes: int,
    ) -> MemCost:
        """Positional gather of ``n_candidates`` of ``n_rows`` values from
        one column array (lazy/late-materialized access after a selection).

        The access order is ascending but irregular. When the candidates
        are dense enough that most lines are touched, the miss pattern is
        line-sequential and the prefetcher engages (covered, bandwidth
        cost over the touched lines); when sparse, each touched line is a
        demand miss (exposed latency).
        """
        if n_candidates <= 0 or n_rows <= 0:
            return ZERO_COST
        per_line = max(1, self.line_bytes // max(1, value_bytes))
        total_lines = math.ceil(n_rows / per_line)
        density = n_candidates / n_rows
        touched = total_lines * (1.0 - (1.0 - density) ** per_line)
        self.traffic.add(touched * self.line_bytes, 0.0)
        if touched / total_lines >= self.GATHER_STREAM_THRESHOLD:
            cycles = touched * self.platform.dram.stream_cycles_per_line
            self.traffic.cycles += cycles
            return MemCost(covered=cycles, exposed=0.0)
        cycles = touched * self.platform.dram.unprefetched_cycles_per_line
        self.traffic.cycles += cycles
        return MemCost(covered=0.0, exposed=cycles)

    def lines(self, nbytes: float) -> float:
        return nbytes / self.line_bytes

    def region(self, key: Hashable, nbytes: int) -> int:
        """Stable synthetic base address for a named data region.

        Engines use this so repeated scans of the same structure (the row
        image, a column, the fabric's ephemeral window) revisit the same
        addresses and share cache state instead of touching a fresh
        allocation every query. Models without an address space return 0,
        which callers pass straight through as ``base_addr`` (the trace
        model treats 0 as "allocate fresh")."""
        return 0


class AnalyticMemoryModel(MemoryModel):
    """Closed-form costs for cold scans (working set >> LLC)."""

    def sequential(
        self, total_bytes: int, base_addr: int = 0, write: bool = False
    ) -> MemCost:
        if total_bytes <= 0:
            return ZERO_COST
        dram = self.platform.dram
        nlines = math.ceil(total_bytes / self.line_bytes)
        cycles = nlines * dram.stream_cycles_per_line
        if write:
            # Write-allocate + eventual write-back doubles the traffic.
            cycles *= 2
            self.traffic.add(2 * nlines * self.line_bytes, cycles)
        else:
            self.traffic.add(nlines * self.line_bytes, cycles)
        return MemCost(covered=cycles, exposed=0.0)

    def multi_stream(
        self, stream_bytes: Sequence[int], base_addrs: Optional[Sequence[int]] = None
    ) -> MemCost:
        dram = self.platform.dram
        max_streams = self.platform.prefetcher.max_streams
        sizes = sorted((b for b in stream_bytes if b > 0), reverse=True)
        covered = 0.0
        exposed = 0.0
        nbytes = 0.0
        for rank, size in enumerate(sizes):
            nlines = math.ceil(size / self.line_bytes)
            if rank < max_streams:
                covered += nlines * dram.stream_cycles_per_line
            else:
                exposed += nlines * dram.unprefetched_cycles_per_line
            nbytes += nlines * self.line_bytes
        self.traffic.add(nbytes, covered + exposed)
        return MemCost(covered=covered, exposed=exposed)

    def strided(
        self,
        nrows: int,
        stride_bytes: int,
        touched_per_row: int,
        base_addr: int = 0,
    ) -> MemCost:
        if nrows <= 0:
            return ZERO_COST
        dram = self.platform.dram
        if stride_bytes <= self.line_bytes:
            # Every line of the region is touched: a plain sequential scan.
            return self.sequential(nrows * stride_bytes, base_addr)
        lines_per_row = self._lines_per_strided_row(stride_bytes, touched_per_row)
        nlines = nrows * lines_per_row
        if stride_bytes <= self.platform.prefetcher.max_stride_bytes:
            cost = MemCost(covered=nlines * dram.stream_cycles_per_line, exposed=0.0)
        else:
            cost = MemCost(covered=0.0, exposed=nlines * dram.unprefetched_cycles_per_line)
        self.traffic.add(nlines * self.line_bytes, cost.total)
        return cost

    def _lines_per_strided_row(self, stride_bytes: int, touched: int) -> float:
        """Expected distinct lines per row for ``touched`` bytes at an
        arbitrary alignment within a ``stride_bytes`` row."""
        touched = max(1, touched)
        # A touched span of t bytes starting uniformly crosses an extra
        # line boundary with probability (t-1)/line.
        return 1 + (touched - 1) / self.line_bytes

    def random(self, n_accesses: int, working_set_bytes: int) -> MemCost:
        if n_accesses <= 0:
            return ZERO_COST
        plat = self.platform
        if working_set_bytes <= plat.l1.size_bytes:
            cycles = n_accesses * plat.l1.hit_cycles
            self.traffic.add(0, cycles)
            return MemCost(covered=cycles, exposed=0.0)
        if working_set_bytes <= plat.l2.size_bytes:
            cycles = n_accesses * plat.l2.hit_cycles
            self.traffic.add(0, cycles)
            return MemCost(covered=cycles, exposed=0.0)
        # Cold random access: average of open/closed row DRAM latency plus
        # the L2 lookup on the way; a fraction still hits in L2 when the
        # working set is near-resident.
        dram = plat.dram
        per = plat.l2.hit_cycles + (dram.row_hit_cycles + dram.row_miss_cycles) / 2
        resident = min(1.0, plat.l2.size_bytes / working_set_bytes)
        per_mixed = resident * plat.l2.hit_cycles + (1 - resident) * per
        cycles = n_accesses * per_mixed
        self.traffic.add(n_accesses * (1 - resident) * self.line_bytes, cycles)
        return MemCost(covered=0.0, exposed=cycles)


class TraceMemoryModel(MemoryModel):
    """Event-accurate model: every charge walks the cache hierarchy.

    The covered/exposed split is classified per access: cache hits and
    prefetch-covered stream transfers are covered; demand DRAM misses are
    exposed.
    """

    def __init__(
        self,
        platform: PlatformConfig,
        hierarchy: Optional[MemoryHierarchy] = None,
        use_batch: bool = True,
    ):
        super().__init__(platform)
        self.hierarchy = hierarchy or MemoryHierarchy(platform)
        self._alloc_cursor = 1 << 32  # synthetic address space for streams
        self._rng_state = 0x9E3779B97F4A7C15
        #: Route charges through the vectorized batch kernel
        #: (:mod:`repro.hw.batch`). The scalar per-line loops remain
        #: available (``use_batch=False``) as the reference; both produce
        #: bit-identical stats and cycles (property-tested).
        self.use_batch = use_batch
        self._regions: Dict[Hashable, Tuple[int, int]] = {}

    def region(self, key: Hashable, nbytes: int) -> int:
        entry = self._regions.get(key)
        if entry is None or entry[1] < nbytes:
            entry = (self._alloc(nbytes), nbytes)
            self._regions[key] = entry
        return entry[0]

    def _alloc(self, nbytes: int) -> int:
        """Carve a fresh region so distinct scans do not alias."""
        base = self._alloc_cursor
        aligned = (nbytes + self.line_bytes - 1) // self.line_bytes * self.line_bytes
        self._alloc_cursor += aligned + 64 * self.line_bytes
        return base

    def _classified(self, run) -> MemCost:
        """Run a traced access closure and classify its cycle total."""
        h = self.hierarchy
        misses_before = h.dram.stats.row_hits + h.dram.stats.row_misses
        covered_before = h.prefetcher.covered
        dram_before = h.stats.dram_lines
        cycles = run()
        demand = (h.dram.stats.row_hits + h.dram.stats.row_misses) - misses_before
        covered_lines = h.prefetcher.covered - covered_before
        moved = h.stats.dram_lines - dram_before
        self.traffic.add(moved * self.line_bytes, cycles)
        # Demand misses (not prefetch-covered) are exposed latency; the
        # rest of the cycles (hits + streamed lines) are covered.
        exposed = 0.0
        demand_misses = max(0, demand - 0)  # stream_cost bumps row_hits too
        if moved:
            exposed_fraction = max(0.0, (moved - covered_lines) / moved)
            exposed = cycles * exposed_fraction
        return MemCost(covered=cycles - exposed, exposed=exposed)

    def sequential(
        self, total_bytes: int, base_addr: int = 0, write: bool = False
    ) -> MemCost:
        if total_bytes <= 0:
            return ZERO_COST
        if base_addr == 0:
            base_addr = self._alloc(total_bytes)
        if self.use_batch:
            lines = hwbatch.sequential_lines(base_addr, total_bytes, self.line_bytes)
            return self._classified(
                lambda: self.hierarchy.access_lines_batch(
                    lines, write=write, stride_hint=self.line_bytes
                )
            )
        return self._classified(
            lambda: self.hierarchy.scan_region(base_addr, total_bytes, write=write)
        )

    def multi_stream(
        self, stream_bytes: Sequence[int], base_addrs: Optional[Sequence[int]] = None
    ) -> MemCost:
        # Pair sizes with addresses *before* dropping empty streams, so a
        # caller-provided base_addrs stays aligned with its stream list.
        if base_addrs is not None:
            pairs = [(b, a) for b, a in zip(stream_bytes, base_addrs) if b > 0]
            sizes = [b for b, _ in pairs]
            addrs: List[int] = [a for _, a in pairs]
        else:
            sizes = [b for b in stream_bytes if b > 0]
            addrs = [self._alloc(b) for b in sizes]
        if not sizes:
            return ZERO_COST
        nlines = [math.ceil(b / self.line_bytes) for b in sizes]
        cursors = [self.hierarchy.l1.line_of(a) for a in addrs]

        if self.use_batch:
            lines = hwbatch.interleaved_lines(cursors, nlines)
            return self._classified(
                lambda: self.hierarchy.access_lines_batch(
                    lines, stride_hint=self.line_bytes
                )
            )

        def run():
            lines_left = list(nlines)
            cur = list(cursors)
            cycles = 0.0
            # Lockstep round-robin: one line from each live stream per round.
            while any(n > 0 for n in lines_left):
                for i in range(len(sizes)):
                    if lines_left[i] > 0:
                        cycles += self.hierarchy.access_lines(
                            [cur[i]], stride_hint=self.line_bytes
                        )
                        cur[i] += 1
                        lines_left[i] -= 1
            return cycles

        return self._classified(run)

    def strided(
        self,
        nrows: int,
        stride_bytes: int,
        touched_per_row: int,
        base_addr: int = 0,
    ) -> MemCost:
        if nrows <= 0:
            return ZERO_COST
        if base_addr == 0:
            base_addr = self._alloc(nrows * stride_bytes)
        if self.use_batch and stride_bytes > 0:
            lines = hwbatch.strided_lines(
                base_addr, nrows, stride_bytes, touched_per_row, self.line_bytes
            )
            return self._classified(
                lambda: self.hierarchy.access_lines_batch(
                    lines, stride_hint=stride_bytes
                )
            )
        return self._classified(
            lambda: self.hierarchy.scan_region(
                base_addr,
                nrows * stride_bytes,
                stride_bytes=stride_bytes,
                touched_per_row=touched_per_row,
            )
        )

    def random(self, n_accesses: int, working_set_bytes: int) -> MemCost:
        if n_accesses <= 0:
            return ZERO_COST
        base = self._alloc(working_set_bytes)
        nlines = max(1, working_set_bytes // self.line_bytes)
        base_line = self.hierarchy.l1.line_of(base)

        if self.use_batch:
            states = hwbatch.lcg_states(self._rng_state, n_accesses)
            offsets = ((states >> np.uint64(33)) % np.uint64(nlines)).astype(np.int64)
            self._rng_state = int(states[-1])
            lines = offsets + base_line
            return self._classified(
                lambda: self.hierarchy.access_lines_batch(lines, stride_hint=2**20)
            )

        def run():
            cycles = 0.0
            state = self._rng_state
            for _ in range(n_accesses):
                state = (state * 6364136223846793005 + 1442695040888963407) & (
                    2**64 - 1
                )
                line = base_line + (state >> 33) % nlines
                cycles += self.hierarchy.access_lines([line], stride_hint=2**20)
            self._rng_state = state
            return cycles

        return self._classified(run)

    def gather(self, n_candidates: int, n_rows: int, value_bytes: int) -> MemCost:
        """Trace an ascending irregular gather over a fresh column array."""
        if n_candidates <= 0 or n_rows <= 0:
            return ZERO_COST
        base = self._alloc(n_rows * value_bytes)
        base_line = self.hierarchy.l1.line_of(base)
        step = max(1, n_rows // n_candidates)
        per_line = max(1, self.line_bytes // max(1, value_bytes))

        if self.use_batch:
            states = hwbatch.lcg_states(self._rng_state, n_candidates)
            deltas = (
                np.uint64(1) + (states >> np.uint64(33)) % np.uint64(2 * step - 1)
            ).astype(np.int64)
            self._rng_state = int(states[-1])
            idx = np.cumsum(deltas)
            lines = base_line + idx // per_line
            return self._classified(
                lambda: self.hierarchy.access_lines_batch(lines, stride_hint=2**20)
            )

        def run():
            cycles = 0.0
            state = self._rng_state
            idx = 0
            for _ in range(n_candidates):
                state = (state * 6364136223846793005 + 1442695040888963407) & (
                    2**64 - 1
                )
                idx += 1 + (state >> 33) % (2 * step - 1)
                line = base_line + idx // per_line
                cycles += self.hierarchy.access_lines([line], stride_hint=2**20)
            self._rng_state = state
            return cycles

        return self._classified(run)
