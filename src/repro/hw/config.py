"""Platform presets and cost-model constants for the hardware simulators.

The paper's target platform (its Section V) is a Xilinx Zynq UltraScale+
MPSoC: four in-order Cortex-A53 cores at 1.5 GHz with 32+32 KB private L1
caches and a shared 1 MB L2, and the Relational Memory (RM) engine placed
in programmable logic clocked at 100 MHz with a 2 MB on-fabric data memory.
:data:`ZYNQ_ULTRASCALE` encodes that platform.

All cycle quantities in this package are expressed in **CPU cycles** of the
configured core clock. The RM engine runs in a slower clock domain; its
per-fabric-cycle costs are converted through ``clock_ratio``.

Calibration
-----------
Latency/bandwidth numbers are typical published figures for the A53 memory
subsystem. Three constants are *calibrated* rather than measured, because
they stand in for prototype behaviour the paper reports only indirectly
(the observed RM-vs-ROW band of 1.3-1.5x and the COL/RM crossover at four
columns): ``volcano_tuple_cycles``, ``rm_line_fabric_cycles`` and
``col_reconstruct_cycles``. Each is documented at its definition site.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

#: Size of a cache line / DRAM burst in bytes on every supported platform.
CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    ways: int
    line_bytes: int = CACHE_LINE_BYTES
    #: Load-to-use latency of a hit in this level, in CPU cycles.
    hit_cycles: int = 2

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    def validate(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.line_bytes}B lines"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ConfigurationError(
                f"number of sets must be a power of two, got {self.num_sets}"
            )


@dataclass(frozen=True)
class DramConfig:
    """Timing of the DRAM device behind the last-level cache.

    The model is deliberately coarse: a closed-row access costs
    ``row_miss_cycles``, a hit in the open row buffer costs
    ``row_hit_cycles``, and ``banks`` independent banks can overlap
    accesses. ``stream_cycles_per_line`` is the steady-state cost of one
    line when the access pattern is sequential and covered by the
    prefetcher (i.e. the bandwidth-bound regime).
    """

    banks: int = 8
    row_bytes: int = 2048
    row_hit_cycles: int = 90
    row_miss_cycles: int = 165
    #: Amortized CPU cycles per 64 B line for a prefetch-covered stream.
    stream_cycles_per_line: int = 24
    #: How many streaming cores saturate the DDR channel: bandwidth-bound
    #: (covered) work stops scaling past this thread count, while compute
    #: and latency-bound work keep scaling. This asymmetry is why the
    #: fabric — which moves fewer bytes — scales further on the paper's
    #: 4-core testbed.
    bandwidth_saturation_cores: int = 2
    #: Effective per-line cost for a non-prefetched stream. An in-order
    #: core with a near-blocking load path (Cortex-A53-class, two or three
    #: outstanding misses) overlaps little, so this sits close to the full
    #: row-access latency rather than the bandwidth-bound cost.
    unprefetched_cycles_per_line: int = 150


@dataclass(frozen=True)
class PrefetcherConfig:
    """Stream prefetcher model.

    The paper's crossover argument (Section V, Figure 5) rests on the
    Cortex-A53 prefetcher tracking a small number of concurrent sequential
    streams — "the prefetcher can efficiently support up to four parallel
    sequential accesses". Streams beyond ``max_streams`` fall back to
    demand misses; strides larger than ``max_stride_bytes`` are never
    prefetched (large-stride row scans of narrow columns defeat it).
    """

    max_streams: int = 4
    #: Number of sequential line accesses before a stream is confirmed.
    train_lines: int = 3
    max_stride_bytes: int = 256


@dataclass(frozen=True)
class CpuConfig:
    """Per-operation CPU costs for the in-order core model.

    The constants describe an interpretation-style query engine on a small
    in-order core, in cycles:

    * ``volcano_tuple_cycles`` — per-tuple overhead of the Volcano
      ``next()`` call chain in the row engine **and** of the scalar loop
      over an ephemeral struct in the RM engine (the paper's Figure 3
      kernel is exactly such a scalar loop). *Calibrated.*
    * ``vector_op_cycles`` — per-value cost of a primitive in the
      column-at-a-time engine (tight loop, no call overhead).
    * ``col_reconstruct_cycles`` — per-value cost of stitching one column
      value into an output tuple during tuple reconstruction in the column
      engine; this is the materialization cost that grows with
      projectivity. *Calibrated.*
    """

    freq_hz: int = 1_500_000_000
    volcano_tuple_cycles: int = 34
    field_extract_cycles: int = 7
    predicate_cycles: int = 3
    aggregate_update_cycles: int = 9
    vector_op_cycles: int = 2
    col_reconstruct_cycles: int = 6
    branch_miss_cycles: int = 8
    function_call_cycles: int = 6
    #: Cost of materializing one value of a column-at-a-time intermediate
    #: result (write + later read of the intermediate vector).
    intermediate_value_cycles: int = 2
    #: Generic interpreted ALU operation in a scalar (tuple-at-a-time) loop.
    scalar_op_cycles: int = 3
    #: Per-tuple overhead of the scalar loop over an ephemeral struct (the
    #: paper's Figure 3 kernel): a plain counted loop, cheaper than a
    #: Volcano next() chain. *Calibrated.*
    ephemeral_tuple_cycles: int = 12
    #: Extracting one field from a packed ephemeral struct (constant
    #: offsets, always line-resident). *Calibrated.*
    packed_field_cycles: int = 4


@dataclass(frozen=True)
class RmConfig:
    """The Relational Memory engine in programmable logic.

    * ``freq_hz`` — fabric clock (100 MHz on the Zynq prototype).
    * ``buffer_bytes`` — on-fabric data memory holding packed lines; when
      the requested column group exceeds it, the engine refills it and the
      CPU observes a stall (Section V: "RM supports arbitrary data sizes
      even with a small data memory of 2 MB ... by refilling it").
    * ``line_fabric_cycles`` — fabric cycles the engine needs to gather and
      pack one 64 B output line from row-major DRAM content, after bank
      parallelism. *Calibrated.*
    * ``refill_stall_cycles`` — CPU cycles of pipeline drain per buffer
      refill.
    * ``configure_cycles`` — one-off cost of configuring an ephemeral
      variable (writing geometry registers over AXI).
    """

    freq_hz: int = 100_000_000
    buffer_bytes: int = 2 * 1024 * 1024
    line_fabric_cycles: int = 2
    refill_stall_cycles: int = 1800
    configure_cycles: int = 450
    #: Extra fabric cycles per referenced source row beyond the first that
    #: contributes to one packed output line (wide gathers pack fields from
    #: many rows and pay for the extra strided DRAM requests).
    gather_row_fabric_cycles: float = 0.14

    def clock_ratio(self, cpu: CpuConfig) -> float:
        """CPU cycles per fabric cycle."""
        return cpu.freq_hz / self.freq_hz


@dataclass(frozen=True)
class PlatformConfig:
    """A complete simulated platform: CPU, caches, DRAM, prefetcher, RM."""

    name: str
    cpu: CpuConfig = field(default_factory=CpuConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=32 * 1024, ways=4, hit_cycles=2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=1024 * 1024, ways=16, hit_cycles=15)
    )
    dram: DramConfig = field(default_factory=DramConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    rm: RmConfig = field(default_factory=RmConfig)

    def validate(self) -> None:
        self.l1.validate()
        self.l2.validate()
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigurationError("L1 and L2 must share one line size")
        if self.rm.buffer_bytes % self.l1.line_bytes != 0:
            raise ConfigurationError("RM buffer must be a whole number of lines")

    def with_rm(self, **changes) -> "PlatformConfig":
        """Return a copy with the RM engine reconfigured (for ablations)."""
        return replace(self, rm=replace(self.rm, **changes))

    def with_prefetcher(self, **changes) -> "PlatformConfig":
        """Return a copy with the prefetcher reconfigured (for ablations)."""
        return replace(self, prefetcher=replace(self.prefetcher, **changes))


#: The paper's evaluation platform (Section V "Target Platform").
ZYNQ_ULTRASCALE = PlatformConfig(name="zynq-ultrascale-mpsoc")

#: The Relational Memory Controller of Section IV-C: the same transform
#: engine integrated *into* the memory controller and driven through an
#: ISA extension. Modelled differences, each tied to a claim in §IV-C:
#:
#: * ``freq_hz`` — the controller clock domain, far above the 100 MHz a
#:   soft-logic prototype reaches;
#: * ``configure_cycles`` — "extending the ISA as an RMC interface":
#:   geometry registers are written by an instruction, not by MMIO over
#:   AXI (hundreds of cycles → ~a pipeline flush);
#: * ``line_fabric_cycles`` / ``gather_row_fabric_cycles`` — "low-level
#:   access to the actual memory DIMMs ... fully exploit the capabilities
#:   of DDR memory chips": the per-line assembly loses the AXI hop and
#:   the gather path schedules directly against open rows.
ZYNQ_RMC = PlatformConfig(
    name="zynq-rmc",
    rm=RmConfig(
        freq_hz=800_000_000,
        buffer_bytes=2 * 1024 * 1024,
        line_fabric_cycles=1,
        refill_stall_cycles=600,
        configure_cycles=18,
        gather_row_fabric_cycles=0.07,
    ),
)

#: A tiny platform used by unit tests so cache effects are visible with
#: kilobyte-scale tables.
TEST_PLATFORM = PlatformConfig(
    name="test-small",
    l1=CacheConfig(size_bytes=1024, ways=2, hit_cycles=2),
    l2=CacheConfig(size_bytes=8192, ways=4, hit_cycles=15),
    rm=RmConfig(buffer_bytes=4096),
)


def default_platform() -> PlatformConfig:
    """The platform every high-level API uses unless told otherwise."""
    return ZYNQ_ULTRASCALE
