"""AXI-like burst bus between the RM engine and DRAM.

The Zynq prototype talks to memory over an AMBA AXI port (paper Section
IV-A, step 2: "RM communicates with memory via an AXI bus and assembles
multiple entries into a single packed cache line"). The model prices
burst transactions: a fixed handshake per burst plus a per-beat transfer
cost, all in *fabric* cycles — callers convert to CPU cycles through the
RM clock ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AxiConfig:
    """Burst geometry and handshake costs (fabric cycles)."""

    data_bytes_per_beat: int = 16  # 128-bit AXI data bus
    max_beats_per_burst: int = 16
    handshake_cycles: int = 4
    beat_cycles: int = 1


@dataclass
class BusStats:
    bursts: int = 0
    beats: int = 0

    @property
    def bytes_transferred(self) -> int:
        return self.beats * 16


class AxiBus:
    """Prices read bursts issued by the RM engine."""

    def __init__(self, config: AxiConfig = AxiConfig()):
        self.config = config
        self.stats = BusStats()

    def burst_cycles(self, nbytes: int) -> int:
        """Fabric cycles to move ``nbytes`` as one or more bursts."""
        if nbytes <= 0:
            return 0
        cfg = self.config
        beats = math.ceil(nbytes / cfg.data_bytes_per_beat)
        bursts = math.ceil(beats / cfg.max_beats_per_burst)
        self.stats.bursts += bursts
        self.stats.beats += beats
        return bursts * cfg.handshake_cycles + beats * cfg.beat_cycles

    def scatter_cycles(self, n_requests: int, bytes_per_request: int) -> int:
        """Fabric cycles for ``n_requests`` independent narrow reads, as
        issued when gathering scattered column bytes. Requests to distinct
        banks overlap at the DRAM; the bus still pays per-burst handshakes.
        """
        if n_requests <= 0:
            return 0
        cfg = self.config
        beats_per = max(1, math.ceil(bytes_per_request / cfg.data_bytes_per_beat))
        self.stats.bursts += n_requests
        self.stats.beats += n_requests * beats_per
        # Handshakes pipeline back-to-back: one cycle of issue each after
        # the first full handshake.
        return cfg.handshake_cycles + n_requests * (1 + (beats_per - 1) * cfg.beat_cycles)
