#!/usr/bin/env python
"""Gate benchmark results against committed baselines.

Compares each BENCH_*.json produced by a bench run against the file of
the same name under ``--baseline-dir``, using the ordered tolerance spec
in ``--tolerances`` (see :mod:`repro.bench.regress` for the rule
format). Deterministic simulated metrics (cycles, bytes, record counts)
gate tightly; wall-clock metrics are ignored — CI machines are noise.

Exit status: 0 when every file passes, 1 on any regression, 2 on usage
errors (missing baseline, unreadable spec)::

    PYTHONPATH=src python scripts/bench_compare.py \\
        --baseline-dir benchmarks/baselines \\
        --tolerances benchmarks/baselines/tolerances.json \\
        --report REGRESS_report.json \\
        BENCH_trace.json BENCH_recovery.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.bench.regress import compare, load_spec  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff benchmark JSON against committed baselines."
    )
    parser.add_argument("current", nargs="+", help="BENCH_*.json files to check")
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory holding baseline files with matching basenames",
    )
    parser.add_argument(
        "--tolerances",
        default=None,
        help="tolerance spec JSON (default: <baseline-dir>/tolerances.json)",
    )
    parser.add_argument(
        "--report", default=None, help="write the full comparison report here"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print every finding, not just drifts"
    )
    args = parser.parse_args(argv)

    spec_path = args.tolerances or os.path.join(
        args.baseline_dir, "tolerances.json"
    )
    try:
        rules = load_spec(spec_path)
    except (OSError, ValueError, TypeError, json.JSONDecodeError) as exc:
        print(f"ERROR: cannot load tolerance spec {spec_path}: {exc}",
              file=sys.stderr)
        return 2

    reports = []
    failed = False
    for cur_path in args.current:
        name = os.path.basename(cur_path)
        base_path = os.path.join(args.baseline_dir, name)
        try:
            with open(base_path) as f:
                baseline = json.load(f)
        except OSError as exc:
            print(f"ERROR: no baseline for {name}: {exc}", file=sys.stderr)
            return 2
        try:
            with open(cur_path) as f:
                current = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"ERROR: cannot read current result {cur_path}: {exc}",
                  file=sys.stderr)
            return 2
        report = compare(name, baseline, current, rules)
        reports.append(report)
        print(report.render(verbose=args.verbose))
        failed = failed or report.failed

    if args.report:
        with open(args.report, "w") as f:
            json.dump([r.to_json_obj() for r in reports], f, indent=2)

    if failed:
        total = sum(len(r.regressions) for r in reports)
        print(f"\nFAIL: {total} regression(s) against baseline", file=sys.stderr)
        return 1
    print("\nOK: all benchmark metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
