#!/usr/bin/env python
"""Validate an observability JSON artifact.

Two formats are recognized by content, not filename:

* Chrome trace-event files (``Trace.to_chrome_json`` output) are checked
  against the format Perfetto and ``chrome://tracing`` accept:

  1. top level is an object with a ``traceEvents`` array;
  2. every event has ``name``/``ph``/``pid``/``tid``; phases are limited
     to ``X`` (complete) and ``M`` (metadata);
  3. complete events carry non-negative numeric ``ts``/``dur``;
  4. every complete event nests inside the widest one (children never
     overflow their parent on the timeline);
  5. ``args`` values are JSON scalars/containers (already guaranteed by
     ``json.load``, but ``NaN``/``Infinity`` are rejected — Perfetto's
     strict parser refuses them).

* Metrics time-series files (``MetricsTimeSeries.to_json`` output,
  ``"schema": "repro.metrics/v1"``) are checked for: a positive
  ``interval_cycles``; strictly increasing finite ``ticks``; a
  rectangular ``series`` map whose columns match the tick count and
  hold only finite numbers or ``null`` (the pre-registration backfill).
  Serving-layer series (``serve_*``) get semantic checks on top: every
  sample non-negative, and the lifecycle counters
  (``serve_submitted``/``serve_admitted``/.../``serve_expired``, plus
  the latency/queue histogram ``_count``/``_sum`` expansions) monotone
  non-decreasing over the run. Code-fragment-cache series
  (``codecache_*``) likewise: non-negative everywhere, ``*_total``
  counters monotone, and ``codecache_hit_rate`` inside [0, 1].
  Distributed-execution series (``dist_*``): non-negative everywhere,
  ``*_total`` counters monotone, ``dist_hedge_wins_total`` never above
  ``dist_hedges_total``, and ``dist_workers_alive`` an integer gauge.
  SQL front-door series (``sql_*``): non-negative everywhere, every
  ``*_total`` counter monotone non-decreasing, and ``sql_txn_open`` a
  0/1 gauge (is an explicit transaction open right now).
  SLO series (``slo_*``): burn rates non-negative, ``slo_in_breach`` a
  0/1 gauge, ``*_total`` counters monotone. Flight-recorder series
  (``journal_*``): non-negative, ``*_total`` counters monotone.

* Flight-recorder dumps (``FlightRecorder.dump`` output, ``"schema":
  "journal/v1"``) are checked for: a non-empty ``events`` array of
  objects with strictly increasing integer ``seq``, non-negative finite
  ``cycles``, and a non-empty string ``kind``; ``capacity`` positive;
  ``dropped``/``events_total`` non-negative and consistent with the
  retained event count.

  Chrome traces additionally get a statement-pipeline check: every
  ``sql.*`` span must carry ``layer == "sql"`` so the pipeline's spans
  group under one lane in Perfetto.

Exit status 0 when the file is valid, 1 with a message otherwise::

    python scripts/check_trace_schema.py TRACE_q6.json
    python scripts/check_trace_schema.py METRICS_htap.json
"""

from __future__ import annotations

import json
import math
import sys

REQUIRED = {"name", "ph", "pid", "tid"}
PHASES = {"X", "M"}

#: Serving-layer counters that may never decrease between samples.
#: Matched against the series base name (labels stripped).
SERVE_MONOTONE = {
    "serve_submitted",
    "serve_admitted",
    "serve_completed",
    "serve_degraded",
    "serve_throttled",
    "serve_shed",
    "serve_expired",
    "serve_degraded_mode_entries",
    "serve_latency_count",
    "serve_latency_sum",
    "serve_time_in_queue_count",
    "serve_time_in_queue_sum",
}


def _serve_errors(name: str, column) -> "str | None":
    """Semantic checks for one ``serve_*`` series; None when clean."""
    base = name.split("{", 1)[0]
    prev = None
    for i, v in enumerate(column):
        if v is None:
            continue
        if v < 0:
            return f"series {name!r}[{i}]: negative serving sample {v!r}"
        if base in SERVE_MONOTONE:
            if prev is not None and v < prev:
                return (
                    f"series {name!r}[{i}]: counter decreased "
                    f"({prev!r} -> {v!r})"
                )
            prev = v
    return None


def _codecache_errors(name: str, column) -> "str | None":
    """Semantic checks for one ``codecache_*`` series; None when clean.

    Every sample must be non-negative; ``*_total`` counters are monotone
    non-decreasing; the hit-rate gauge stays inside [0, 1].
    """
    base = name.split("{", 1)[0]
    prev = None
    for i, v in enumerate(column):
        if v is None:
            continue
        if v < 0:
            return f"series {name!r}[{i}]: negative codecache sample {v!r}"
        if base == "codecache_hit_rate" and v > 1:
            return f"series {name!r}[{i}]: hit rate {v!r} above 1"
        if base.endswith("_total"):
            if prev is not None and v < prev:
                return (
                    f"series {name!r}[{i}]: counter decreased "
                    f"({prev!r} -> {v!r})"
                )
            prev = v
    return None


def _dist_errors(name: str, column) -> "str | None":
    """Semantic checks for one ``dist_*`` series; None when clean.

    Every sample must be non-negative; ``*_total`` counters are monotone
    non-decreasing; ``dist_workers_alive`` and the per-shard incarnation
    gauges must be integers (a fractional worker is a collector bug).
    """
    base = name.split("{", 1)[0]
    prev = None
    for i, v in enumerate(column):
        if v is None:
            continue
        if v < 0:
            return f"series {name!r}[{i}]: negative dist sample {v!r}"
        if base in ("dist_workers_alive", "dist_shard_incarnation") and (
            float(v) != int(v)
        ):
            return f"series {name!r}[{i}]: non-integer gauge {v!r}"
        if base.endswith("_total"):
            if prev is not None and v < prev:
                return (
                    f"series {name!r}[{i}]: counter decreased "
                    f"({prev!r} -> {v!r})"
                )
            prev = v
    return None


def _sql_errors(name: str, column) -> "str | None":
    """Semantic checks for one ``sql_*`` series; None when clean.

    Every sample must be non-negative; ``*_total`` counters are monotone
    non-decreasing; ``sql_txn_open`` is a 0/1 gauge.
    """
    base = name.split("{", 1)[0]
    prev = None
    for i, v in enumerate(column):
        if v is None:
            continue
        if v < 0:
            return f"series {name!r}[{i}]: negative sql sample {v!r}"
        if base == "sql_txn_open" and v not in (0, 1):
            return f"series {name!r}[{i}]: sql_txn_open must be 0/1, got {v!r}"
        if base.endswith("_total"):
            if prev is not None and v < prev:
                return (
                    f"series {name!r}[{i}]: counter decreased "
                    f"({prev!r} -> {v!r})"
                )
            prev = v
    return None


def _slo_errors(name: str, column) -> "str | None":
    """Semantic checks for one ``slo_*`` series; None when clean.

    Burn rates and counts must be non-negative; ``slo_in_breach`` is a
    0/1 gauge; ``*_total`` counters are monotone non-decreasing.
    """
    base = name.split("{", 1)[0]
    prev = None
    for i, v in enumerate(column):
        if v is None:
            continue
        if v < 0:
            return f"series {name!r}[{i}]: negative slo sample {v!r}"
        if base == "slo_in_breach" and v not in (0, 1):
            return f"series {name!r}[{i}]: slo_in_breach must be 0/1, got {v!r}"
        if base.endswith("_total"):
            if prev is not None and v < prev:
                return (
                    f"series {name!r}[{i}]: counter decreased "
                    f"({prev!r} -> {v!r})"
                )
            prev = v
    return None


def _journal_errors(name: str, column) -> "str | None":
    """Semantic checks for one ``journal_*`` series; None when clean."""
    base = name.split("{", 1)[0]
    prev = None
    for i, v in enumerate(column):
        if v is None:
            continue
        if v < 0:
            return f"series {name!r}[{i}]: negative journal sample {v!r}"
        if base.endswith("_total"):
            if prev is not None and v < prev:
                return (
                    f"series {name!r}[{i}]: counter decreased "
                    f"({prev!r} -> {v!r})"
                )
            prev = v
    return None


def _dist_hedge_errors(series) -> "str | None":
    """Cross-series invariant: hedge wins can never outrun hedges."""
    for name, wins in series.items():
        base = name.split("{", 1)[0]
        if base != "dist_hedge_wins_total":
            continue
        labels = name[len(base):]
        hedges = series.get(f"dist_hedges_total{labels}")
        if hedges is None:
            continue
        for i, (w, h) in enumerate(zip(wins, hedges)):
            if w is None or h is None:
                continue
            if w > h:
                return (
                    f"series {name!r}[{i}]: {w!r} hedge wins exceed "
                    f"{h!r} hedges"
                )
    return None


def _fail(msg: str) -> "int":
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def _finite_numbers(value, path: str):
    """Yield an error string for any non-finite float in ``value``."""
    if isinstance(value, float) and not math.isfinite(value):
        yield f"{path}: non-finite number {value!r}"
    elif isinstance(value, dict):
        for k, v in value.items():
            yield from _finite_numbers(v, f"{path}.{k}")
    elif isinstance(value, list):
        for i, v in enumerate(value):
            yield from _finite_numbers(v, f"{path}[{i}]")


def check_metrics(path: str, doc: dict) -> int:
    interval = doc.get("interval_cycles")
    if not isinstance(interval, (int, float)) or not math.isfinite(interval) \
            or interval <= 0:
        return _fail(f"interval_cycles must be a positive number, got {interval!r}")

    ticks = doc.get("ticks")
    if not isinstance(ticks, list):
        return _fail("'ticks' must be an array")
    prev = None
    for i, t in enumerate(ticks):
        if not isinstance(t, (int, float)) or not math.isfinite(t):
            return _fail(f"ticks[{i}]: bad timestamp {t!r}")
        if prev is not None and t <= prev:
            return _fail(f"ticks[{i}]: {t!r} not after {prev!r}")
        prev = t

    series = doc.get("series")
    if not isinstance(series, dict):
        return _fail("'series' must be an object")
    for name, column in series.items():
        if not isinstance(column, list) or len(column) != len(ticks):
            got = len(column) if isinstance(column, list) else type(column).__name__
            return _fail(
                f"series {name!r}: expected {len(ticks)} samples, got {got}"
            )
        for i, v in enumerate(column):
            if v is None:  # backfill before the instrument existed
                continue
            if not isinstance(v, (int, float)) or not math.isfinite(v):
                return _fail(f"series {name!r}[{i}]: bad sample {v!r}")
        if name.startswith("serve_"):
            err = _serve_errors(name, column)
            if err is not None:
                return _fail(err)
        if name.startswith("codecache_"):
            err = _codecache_errors(name, column)
            if err is not None:
                return _fail(err)
        if name.startswith("dist_"):
            err = _dist_errors(name, column)
            if err is not None:
                return _fail(err)
        if name.startswith("sql_"):
            err = _sql_errors(name, column)
            if err is not None:
                return _fail(err)
        if name.startswith("slo_"):
            err = _slo_errors(name, column)
            if err is not None:
                return _fail(err)
        if name.startswith("journal_"):
            err = _journal_errors(name, column)
            if err is not None:
                return _fail(err)

    err = _dist_hedge_errors(series)
    if err is not None:
        return _fail(err)

    print(
        f"OK: {path} — {len(series)} series x {len(ticks)} samples, "
        f"every {interval:g} cycles"
    )
    return 0


def check_journal(path: str, doc: dict) -> int:
    capacity = doc.get("capacity")
    if not isinstance(capacity, int) or capacity < 1:
        return _fail(f"capacity must be a positive integer, got {capacity!r}")
    for key in ("dropped", "events_total"):
        v = doc.get(key)
        if not isinstance(v, int) or v < 0:
            return _fail(f"{key} must be a non-negative integer, got {v!r}")
    events = doc.get("events")
    if not isinstance(events, list) or not events:
        return _fail("'events' must be a non-empty array")
    if len(events) > capacity:
        return _fail(
            f"{len(events)} retained events exceed capacity {capacity}"
        )
    if doc["events_total"] < len(events):
        return _fail(
            f"events_total {doc['events_total']} below the "
            f"{len(events)} retained events"
        )
    prev_seq = None
    for i, event in enumerate(events):
        where = f"events[{i}]"
        if not isinstance(event, dict):
            return _fail(f"{where}: not an object")
        seq = event.get("seq")
        if not isinstance(seq, int) or seq < 1:
            return _fail(f"{where}: bad seq {seq!r}")
        if prev_seq is not None and seq <= prev_seq:
            return _fail(f"{where}: seq {seq!r} not after {prev_seq!r}")
        prev_seq = seq
        cycles = event.get("cycles")
        if (
            not isinstance(cycles, (int, float))
            or not math.isfinite(cycles)
            or cycles < 0
        ):
            return _fail(f"{where}: bad cycles {cycles!r}")
        kind = event.get("kind")
        if not isinstance(kind, str) or not kind:
            return _fail(f"{where}: bad kind {kind!r}")
        for err in _finite_numbers(event.get("attrs", {}), f"{where}.attrs"):
            return _fail(err)
    print(
        f"OK: {path} — {len(events)} events retained "
        f"({doc['events_total']} total, {doc['dropped']} dropped), "
        f"reason {doc.get('reason', '')!r}"
    )
    return 0


def check(path: str) -> int:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return _fail(f"{path}: {exc}")

    if isinstance(doc, dict) and str(doc.get("schema", "")).startswith(
        "repro.metrics"
    ):
        return check_metrics(path, doc)
    if isinstance(doc, dict) and str(doc.get("schema", "")).startswith(
        "journal/"
    ):
        return check_journal(path, doc)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return _fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return _fail("'traceEvents' must be a non-empty array")

    complete = []
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            return _fail(f"{where}: not an object")
        missing = REQUIRED - set(event)
        if missing:
            return _fail(f"{where}: missing {sorted(missing)}")
        if event["ph"] not in PHASES:
            return _fail(f"{where}: unexpected phase {event['ph']!r}")
        for err in _finite_numbers(event.get("args", {}), f"{where}.args"):
            return _fail(err)
        if event["ph"] != "X":
            continue
        for key in ("ts", "dur"):
            v = event.get(key)
            if not isinstance(v, (int, float)) or not math.isfinite(v) or v < 0:
                return _fail(f"{where}: bad {key}={v!r}")
        if str(event["name"]).startswith("sql.") and (
            event.get("args", {}).get("layer") != "sql"
        ):
            return _fail(
                f"{where}: statement-pipeline span {event['name']!r} "
                f"must carry layer == 'sql'"
            )
        complete.append(event)

    if not complete:
        return _fail("no complete ('X') events")
    root = max(complete, key=lambda e: e["dur"])
    lo, hi = root["ts"], root["ts"] + root["dur"]
    for event in complete:
        if event["ts"] < lo - 1e-6 or event["ts"] + event["dur"] > hi + 1e-6:
            return _fail(
                f"event {event['name']!r} [{event['ts']}, "
                f"{event['ts'] + event['dur']}] overflows the root span "
                f"[{lo}, {hi}]"
            )

    spans = len(complete)
    print(f"OK: {path} — {spans} spans, root {root['name']!r} {root['dur']:g}us")
    return 0


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return check(argv[1])


if __name__ == "__main__":
    sys.exit(main(sys.argv))
