"""Setup shim so editable installs work on offline machines without the
``wheel`` package (``python setup.py develop``). Metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
