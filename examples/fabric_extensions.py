"""Beyond the headline figures: the paper's forward-looking sections,
running.

1. §III-A sharding — ephemeral column groups on a shard-key range;
2. §III-B code generation — fragment reuse with and without the fabric;
3. §VII Q1 tensor slicing — the same hardware serving matrix windows;
4. §VII Q3 tiered fabric — compressed columns on flash, rows in memory,
   ephemeral groups at the CPU;
5. a TPC-H join (lineitem ⋈ orders) across all three engines, with the
   statistics-backed optimizer explaining its choice.

Run:  python examples/fabric_extensions.py
"""

import numpy as np

from repro.core.tensor import TensorFabric
from repro.db.plan.codecache import CodeFragmentCache
from repro.db.plan import bind
from repro.db.plan.optimizer import Optimizer
from repro.db.sharding import ShardedTable
from repro.db.sql import parse
from repro.db.engines import all_engines
from repro.storage import ColumnArchive, TieredFabric
from repro.workloads.synthetic import make_wide_table, wide_schema
from repro.workloads.tpch import QJOIN, generate_tpch


def sharding_demo():
    print("=== 1. sharding + ranged ephemeral column groups (§III-A) ===")
    sharded = ShardedTable(
        wide_schema(ncols=4, row_bytes=16, name="events"),
        shard_key="c0",
        boundaries=[250_000, 500_000, 750_000],
    )
    rng = np.random.default_rng(11)
    sharded.bulk_load(
        {f"c{i}": rng.integers(0, 1_000_000, 200_000, dtype=np.int32) for i in range(4)}
    )
    scans = sharded.column_group(["c1", "c2"], key_low=400_000, key_high=600_000)
    touched = [s.shard_index for s in scans]
    rows = sum(len(s.group) for s in scans)
    print(f"  4 shards, key range [400k, 600k] -> shards touched: {touched}")
    print(f"  rows shipped: {rows:,} of {sharded.nrows:,} "
          f"({rows / sharded.nrows:.1%}); boundary shards trimmed in-fabric\n")


def codecache_demo():
    print("=== 2. code-fragment reuse (§III-B) ===")
    catalog, _ = make_wide_table(nrows=64)
    row_cache, eph_cache = CodeFragmentCache(), CodeFragmentCache()
    for i in range(40):
        a, b, c = i % 12, (i + 1) % 12, (i + 5) % 16
        bound = bind(
            parse(f"SELECT sum(c{a} + c{b}) AS s FROM wide WHERE c{c} < 7"), catalog
        )
        row_cache.lookup(bound, "row")
        eph_cache.lookup(bound, "ephemeral")
    print(f"  40 ad-hoc queries over rotating column subsets:")
    print(f"  row layout     : hit rate {row_cache.stats.hit_rate:5.1%}, "
          f"{row_cache.stats.compile_cycles / 1e6:.0f}M compile cycles")
    print(f"  through fabric : hit rate {eph_cache.stats.hit_rate:5.1%}, "
          f"{eph_cache.stats.compile_cycles / 1e6:.0f}M compile cycles\n")


def tensor_demo():
    print("=== 3. matrix slicing through the fabric (§VII Q1) ===")
    fabric = TensorFabric()
    matrix = np.random.default_rng(5).normal(size=(4096, 512))
    window = fabric.slice_matrix(matrix, rows=(0, 4096), cols=(100, 116))
    assert np.array_equal(window.values, matrix[:, 100:116])
    legacy = window.legacy_bytes(512 * 8)
    print(f"  4096x512 float64 matrix, 16-column window:")
    print(f"  bytes shipped  : {window.bytes_shipped:,} "
          f"(legacy row-granular fetch: {legacy:,})")
    print(f"  movement saved : {1 - window.bytes_shipped / legacy:.1%}\n")


def tiered_demo():
    print("=== 4. tiered fabric: flash + memory (§VII Q3) ===")
    catalog, lineitem, _ = generate_tpch(60_000)
    archive = ColumnArchive.from_table(lineitem)
    tiered = TieredFabric(archive)
    warm, report = tiered.materialize_rows()
    print(f"  archive: {archive.stored_bytes / 1e6:.1f} MB compressed "
          f"(ratio {archive.compression_ratio:.2f}x), codecs: "
          f"{sorted(set(archive.codec_summary().values()))}")
    print(f"  cold load: {report.pages_read} pages "
          f"(vs {report.baseline_pages} uncompressed), "
          f"{report.total_us:,.0f} us (baseline {report.baseline_us:,.0f})")
    group = tiered.ephemeral(warm, ["l_extendedprice", "l_discount"])
    print(f"  warm ephemeral group: {group.packed_width} B/row of "
          f"{warm.schema.row_stride} B rows\n")


def join_demo():
    print("=== 5. TPC-H join across engines + optimizer with statistics ===")
    catalog, lineitem, orders = generate_tpch(80_000)
    print(f"  lineitem: {lineitem.nrows:,} rows; orders: {orders.nrows:,} rows")
    for name, engine in all_engines(catalog).items():
        res = engine.execute(QJOIN)
        print(f"  {name:8} {res.cycles:14,.0f} cycles, "
              f"{res.result.nrows} groups")
    catalog.analyze("lineitem")
    decision = Optimizer(catalog).choose(
        "SELECT sum(l_extendedprice) AS s FROM lineitem WHERE l_quantity < 5"
    )
    print("  optimizer (stats-backed) for a 10%-selectivity scan:")
    for path, cycles in decision.ranked():
        marker = "  <== chosen" if path == decision.winner else ""
        print(f"    {path:16} {cycles:14,.0f}{marker}")


if __name__ == "__main__":
    sharding_demo()
    codecache_demo()
    tensor_demo()
    tiered_demo()
    join_demo()
