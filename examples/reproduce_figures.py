"""Regenerate every figure of the paper's evaluation section in one run.

Prints the Figure 5 curve, both Figure 6 heatmaps, and the Figure 7
Q1/Q6 sweeps, each with the shape checks the paper's claims imply.
This is the human-readable front end to the same runners the
``benchmarks/`` targets use.

Run:  python examples/reproduce_figures.py [--quick]
"""

import sys

from repro.bench import run_fig5, run_fig6, run_fig7


def check(label, ok):
    print(f"  [{'ok' if ok else 'MISS'}] {label}")


def main(quick: bool = False):
    nrows5 = 50_000 if quick else 200_000
    nrows6 = 20_000 if quick else 100_000
    scale7 = 1 / 64 if quick else 1 / 16

    print("Figure 5: projectivity sweep")
    fig5 = run_fig5(nrows=nrows5)
    print(fig5.to_table())
    rm_vs_row = fig5.ratio("row", "rm")
    col_vs_rm = fig5.ratio("column", "rm")
    check("RM outperforms ROW at every projectivity", all(r > 1 for r in rm_vs_row))
    check("COL beats RM below 4 columns", all(c < 1 for c in col_vs_rm[:3]))
    check("RM beats COL above 5 columns", all(c > 1 for c in col_vs_rm[5:]))
    print()

    print("Figures 6a/6b: projection x selection heatmaps")
    fig6a, fig6b = run_fig6(nrows=nrows6)
    print(fig6a.to_table())
    print()
    print(fig6b.to_table())
    a_vals = list(fig6a.values.values())
    check("RM beats ROW everywhere (6a all > 1)", min(a_vals) > 1)
    check(
        "6b: COL wins the lower-left corner",
        fig6b.region_mean(lambda s: s <= 2, lambda p: p <= 2) < 1,
    )
    check(
        "6b: RM wins at high column counts",
        fig6b.region_mean(lambda s: s >= 6, lambda p: p >= 6) > 1,
    )
    print()

    for query in ("Q1", "Q6"):
        print(f"Figure 7 ({query}): size sweep")
        fig7 = run_fig7(query=query, scale=scale7)
        print(fig7.to_table())
        row_vs_rm = fig7.ratio("row", "rm")
        col_vs_rm = fig7.ratio("column", "rm")
        check("RM is never slower than ROW", all(r >= 1 for r in row_vs_rm))
        # 2% band, matching tests/test_figures.py: the smallest quick-scale
        # point is a few thousand rows, where generator noise moves ~1%.
        check("RM is never slower than COL", all(c >= 0.98 for c in col_vs_rm))
        if query == "Q1":
            check(
                "Q1 is compute-bound: engines within ~1.5x",
                max(row_vs_rm) < 1.55,
            )
        else:
            check(
                "Q6 is movement-bound: ROW clearly behind",
                min(row_vs_rm) > 1.4,
            )
        print()


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
