"""HTAP with MVCC: fresh analytics over one copy of the data (§III-C).

Shows the paper's central HTAP argument in action:

1. an OLTP stream inserts and updates orders under snapshot isolation
   (write-write conflicts abort, first committer wins);
2. analytic queries run concurrently at a snapshot — through the fabric
   they see *all committed data instantly*, because the timestamp
   visibility check happens in hardware over the single row-oriented
   copy;
3. the column-store comparator pays for its second copy: every analytic
   round must first convert the freshly ingested rows (freshness lag +
   conversion cycles), the bookkeeping the fabric removes.

Run:  python examples/htap_mvcc.py
"""

from repro import TransactionManager
from repro.db import Catalog
from repro.errors import WriteConflictError
from repro.workloads.htap import HtapDriver, orders_schema


def conflict_demo():
    print("=== snapshot isolation: first committer wins ===")
    catalog = Catalog()
    table = catalog.create_table(orders_schema("demo_orders"))
    manager = TransactionManager()

    setup = manager.begin()
    slot = setup.insert(
        table, {"o_id": 1, "o_customer": 7, "o_amount": 99.50, "o_status": 0}
    )
    manager.commit(setup)

    t1 = manager.begin()
    t2 = manager.begin()
    t1.update(table, slot, {"o_status": 1})
    manager.commit(t1)
    print("t1 committed: order 1 -> paid")
    try:
        t2.update(table, slot, {"o_status": 2})
    except WriteConflictError as exc:
        print(f"t2 aborted automatically: {exc}")
    print(f"manager stats: {manager.stats}\n")


def htap_demo():
    print("=== mixed HTAP workload, all three engines ===")
    driver = HtapDriver(initial_rows=5_000)
    stats = driver.run_mixed(rounds=4, txns_per_round=100)

    print(f"transactions : {stats.commits} committed, {stats.aborts} aborted")
    print(f"writes       : {stats.inserts} inserts, {stats.updates} updates")
    print(f"analytics    : {stats.analytic_runs} rounds of "
          f"{driver.ANALYTIC_SQL!r}")
    print()
    print("freshness lag at each analytic round (rows the column-store")
    print("replica had not yet converted; row/rm always see fresh data):")
    print(f"  column-store: {stats.freshness_lag}")
    print(f"  fabric (rm) : {[0] * len(stats.freshness_lag)}")
    print()
    print("cumulative simulated cycles per engine (queries only):")
    for name, cycles in sorted(stats.engine_cycles.items()):
        print(f"  {name:8} {cycles:14,.0f}")
    print(
        f"  column-store layout conversions on top: "
        f"{stats.conversion_cycles:,.0f} cycles"
    )
    print()
    # The fabric's point, quantified: the column engine's true analytic
    # cost includes keeping its second copy current.
    col_total = stats.engine_cycles["column"] + stats.conversion_cycles
    print(
        f"column-store total (queries + conversion): {col_total:,.0f} vs "
        f"rm {stats.engine_cycles['rm']:,.0f} "
        f"({col_total / stats.engine_cycles['rm']:.2f}x)"
    )


if __name__ == "__main__":
    conflict_demo()
    htap_demo()
