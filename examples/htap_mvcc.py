"""HTAP with MVCC: fresh analytics over one copy of the data (§III-C).

Shows the paper's central HTAP argument in action:

1. an OLTP stream inserts and updates orders under snapshot isolation
   (write-write conflicts abort, first committer wins);
2. analytic queries run concurrently at a snapshot — through the fabric
   they see *all committed data instantly*, because the timestamp
   visibility check happens in hardware over the single row-oriented
   copy;
3. the column-store comparator pays for its second copy: every analytic
   round must first convert the freshly ingested rows (freshness lag +
   conversion cycles), the bookkeeping the fabric removes.

Run:  python examples/htap_mvcc.py
"""

from repro import TransactionManager
from repro.db import Catalog
from repro.db.engines import RelationalMemoryEngine
from repro.db.wal import WriteAheadLog
from repro.errors import WriteConflictError
from repro.obs import Trace, Tracer
from repro.workloads.htap import HtapDriver, orders_schema


def conflict_demo():
    print("=== snapshot isolation: first committer wins ===")
    catalog = Catalog()
    table = catalog.create_table(orders_schema("demo_orders"))
    manager = TransactionManager()

    setup = manager.begin()
    slot = setup.insert(
        table, {"o_id": 1, "o_customer": 7, "o_amount": 99.50, "o_status": 0}
    )
    manager.commit(setup)

    t1 = manager.begin()
    t2 = manager.begin()
    t1.update(table, slot, {"o_status": 1})
    manager.commit(t1)
    print("t1 committed: order 1 -> paid")
    try:
        t2.update(table, slot, {"o_status": 2})
    except WriteConflictError as exc:
        print(f"t2 aborted automatically: {exc}")
    print(f"manager stats: {manager.stats}\n")


def htap_demo():
    print("=== mixed HTAP workload, all three engines ===")
    driver = HtapDriver(initial_rows=5_000)
    stats = driver.run_mixed(rounds=4, txns_per_round=100)

    print(f"transactions : {stats.commits} committed, {stats.aborts} aborted")
    print(f"writes       : {stats.inserts} inserts, {stats.updates} updates")
    print(f"analytics    : {stats.analytic_runs} rounds of "
          f"{driver.ANALYTIC_SQL!r}")
    print()
    print("freshness lag at each analytic round (rows the column-store")
    print("replica had not yet converted; row/rm always see fresh data):")
    print(f"  column-store: {stats.freshness_lag}")
    print(f"  fabric (rm) : {[0] * len(stats.freshness_lag)}")
    print()
    print("cumulative simulated cycles per engine (queries only):")
    for name, cycles in sorted(stats.engine_cycles.items()):
        print(f"  {name:8} {cycles:14,.0f}")
    print(
        f"  column-store layout conversions on top: "
        f"{stats.conversion_cycles:,.0f} cycles"
    )
    print()
    # The fabric's point, quantified: the column engine's true analytic
    # cost includes keeping its second copy current.
    col_total = stats.engine_cycles["column"] + stats.conversion_cycles
    print(
        f"column-store total (queries + conversion): {col_total:,.0f} vs "
        f"rm {stats.engine_cycles['rm']:,.0f} "
        f"({col_total / stats.engine_cycles['rm']:.2f}x)"
    )


def trace_demo():
    """One OLTP transaction and one fabric OLAP scan, side by side, as
    span trees — the same data, the two halves of HTAP."""
    print("\n=== span traces: an OLTP commit next to an OLAP scan ===")
    catalog = Catalog()
    table = catalog.create_table(orders_schema("orders"))
    tracer = Tracer()
    manager = TransactionManager(wal=WriteAheadLog(), tracer=tracer)

    for i in range(50):
        txn = manager.begin()
        txn.insert(
            table,
            {"o_id": i, "o_customer": i % 7, "o_amount": 10.0 * i, "o_status": 0},
        )
        manager.commit(txn)

    # Trace one representative write transaction end to end.
    txn = manager.begin()
    txn.insert(
        table, {"o_id": 999, "o_customer": 3, "o_amount": 42.0, "o_status": 0}
    )
    with tracer.span("oltp.txn", layer="txn") as oltp_root:
        manager.commit(txn)
    oltp = Trace(oltp_root)

    # And one analytic query at the fresh snapshot, through the fabric —
    # no conversion step, the hardware applies visibility on the fly.
    engine = RelationalMemoryEngine(catalog, tracer=tracer)
    olap = engine.execute(
        "SELECT sum(o_amount) AS revenue FROM orders WHERE o_status = 0",
        snapshot_ts=manager.now,
    ).trace

    print("\nOLTP commit (WAL append + flush barrier nested inside):")
    print(oltp.render())
    print("\nOLAP ephemeral scan over the same rows (fabric spans):")
    print(olap.render())


if __name__ == "__main__":
    conflict_demo()
    htap_demo()
    trace_demo()
