"""TPC-H analytics across the three engines (paper Figure 7 territory).

Generates a lineitem table, runs Q1 (compute-bound) and Q6
(data-movement-bound) on the row store, the column store, and the
Relational Memory engine; prints answers, simulated times, the cycle
breakdown per engine, and the optimizer's access-path reasoning.

Run:  python examples/tpch_analytics.py [nrows]
"""

import sys

from repro import all_engines
from repro.db.plan.optimizer import Optimizer
from repro.hw.config import default_platform
from repro.hw.cpu import CpuCostModel
from repro.workloads.tpch import Q1, Q6, generate_lineitem


def run_query(name, sql, catalog, cpu):
    print(f"=== {name} ===")
    print(sql.strip())
    print()
    engines = all_engines(catalog)
    results = {}
    for ename, engine in engines.items():
        res = engine.execute(sql)
        results[ename] = res
        ms = cpu.seconds(res.cycles) * 1e3
        fractions = res.ledger.breakdown()
        top = sorted(fractions.items(), key=lambda kv: -kv[1])[:3]
        breakdown = ", ".join(f"{k}={v:.0%}" for k, v in top if v)
        print(
            f"{ename:8} {res.cycles:14,.0f} cycles  {ms:8.2f} sim-ms   "
            f"[{breakdown}]"
        )
    base = results["rm"].cycles
    print(
        f"speedups vs rm: row {results['row'].cycles / base:.2f}x, "
        f"column {results['column'].cycles / base:.2f}x"
    )
    rows = results["rm"].result.rows()
    print(f"\nanswer ({len(rows)} row(s)):")
    for row in rows[:6]:
        print("  ", row)
    # All engines agree — belt and braces.
    for ename, res in results.items():
        assert res.result.rows() == rows or ename == "rm"
    print()
    return results


def main():
    nrows = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    print(f"generating lineitem with {nrows:,} rows ...")
    catalog, table = generate_lineitem(nrows)
    print(f"{table}\n")
    cpu = CpuCostModel(default_platform().cpu)

    run_query("TPC-H Q1 (pricing summary — CPU heavy)", Q1, catalog, cpu)
    run_query("TPC-H Q6 (revenue change — movement bound)", Q6, catalog, cpu)

    print("=== optimizer view of Q6 ===")
    optimizer = Optimizer(catalog)
    decision = optimizer.choose(Q6)
    for path, cycles in decision.ranked():
        marker = " <== chosen" if path == decision.winner else ""
        print(f"  {path:16} {cycles:14,.0f} est. cycles{marker}")
    print()
    print(decision.plan)


if __name__ == "__main__":
    main()
