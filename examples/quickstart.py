"""Quickstart: ephemeral variables over a row-oriented table.

Reproduces the paper's Figure 3 end to end: a row-major table with mixed
text and numeric fields, an ephemeral column group over {key, num_fld1,
num_fld4}, and the scalar query kernel

    for i in range(cg.length):
        if cg[i].key > 10:
            sum += cg[i].num_fld1 * cg[i].num_fld4

executed three ways: through the fabric, row-wise, and via the SQL
engines — all returning the same answer with very different simulated
costs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Catalog, Column, RelationalMemory, TableSchema, all_engines
from repro.db.types import CHAR, INT64
from repro.hw.cpu import CpuCostModel
from repro.hw.config import default_platform


def build_table(nrows: int = 100_000, seed: int = 1):
    """The paper's `struct row`: 8B key, 12+16B text, 4 numeric fields."""
    schema = TableSchema(
        "the_table",
        [
            Column("key", INT64),
            Column("text_fld1", CHAR(12)),
            Column("text_fld2", CHAR(16)),
            Column("num_fld1", INT64),
            Column("num_fld2", INT64),
            Column("num_fld3", INT64),
            Column("num_fld4", INT64),
        ],
    )
    catalog = Catalog()
    table = catalog.create_table(schema)
    rng = np.random.default_rng(seed)
    table.append_arrays(
        {
            "key": rng.integers(0, 100, nrows),
            "text_fld1": np.full(nrows, b"lorem ipsum", dtype="S12"),
            "text_fld2": np.full(nrows, b"dolor sit amet", dtype="S16"),
            "num_fld1": rng.integers(0, 1000, nrows),
            "num_fld2": rng.integers(0, 1000, nrows),
            "num_fld3": rng.integers(0, 1000, nrows),
            "num_fld4": rng.integers(0, 1000, nrows),
        }
    )
    return catalog, table


def main():
    catalog, table = build_table()
    print(f"table: {table}")
    print(f"row stride: {table.schema.row_stride} bytes\n")

    # --- the ephemeral variable of Figure 3 -------------------------------
    geometry = table.schema.geometry(["key", "num_fld1", "num_fld4"])
    rm = RelationalMemory()
    cg = rm.configure(table.frame, geometry)
    print(f"ephemeral column group: {geometry.field_names}")
    print(f"  packed width : {cg.packed_width} B/row "
          f"(vs {table.schema.row_stride} B full row)")
    print(f"  bytes shipped: {geometry.selectivity_of_bytes():.1%} of the row\n")

    # The scalar kernel over the packed group (vectorized here; the cost
    # model charges the scalar loop).
    key = cg.column("key")
    mask = key > 10
    total = int((cg.column("num_fld1")[mask] * cg.column("num_fld4")[mask]).sum())
    print(f"kernel result (fabric): sum = {total}")

    # Same computation straight off the row image.
    direct = int(
        (
            table.column_values("num_fld1")[table.column_values("key") > 10]
            * table.column_values("num_fld4")[table.column_values("key") > 10]
        ).sum()
    )
    assert direct == total
    print(f"kernel result (rows)  : sum = {direct}  (identical)\n")

    print("fabric transformation report:")
    r = cg.report
    print(f"  rows in        : {r.nrows}")
    print(f"  packed lines   : {r.out_lines}")
    print(f"  produce cycles : {r.produce_cycles:,.0f}")
    print(f"  refills        : {r.refills}\n")

    # --- the same query through the three engines -------------------------
    sql = (
        "SELECT sum(num_fld1 * num_fld4) AS s FROM the_table WHERE key > 10"
    )
    cpu = CpuCostModel(default_platform().cpu)
    print(f"SQL: {sql}")
    print(f"{'engine':8} {'cycles':>14} {'sim ms':>9}  answer")
    for name, engine in all_engines(catalog).items():
        res = engine.execute(sql)
        ms = cpu.seconds(res.cycles) * 1e3
        print(f"{name:8} {res.cycles:14,.0f} {ms:9.3f}  {res.result.scalar():,.0f}")


if __name__ == "__main__":
    main()
