"""HTAP purely through the SQL front door — checked against the
programmatic API.

One deterministic order-processing workload is replayed twice:

1. **SQL world** — every operation is a SQL statement through one
   :class:`repro.db.sql.Session`: DDL, autocommitted DML, an explicit
   transaction that ROLLBACKs, and the analytic query, all as text.
2. **Programmatic world** — the same operations through the layered
   API the rest of the library uses directly: ``txn.insert`` /
   ``txn.update`` / ``txn.delete`` under
   :func:`~repro.db.mvcc.run_transaction`, analytics via
   ``engine.execute(..., snapshot_ts=...)``.

After every round the two worlds must return byte-for-byte identical
analytic answers — the front door adds parsing, binding and planning,
but no semantics. The run ends with an EXPLAIN ANALYZE span tree and
the session's ``sql_*`` metrics.

Run:  python examples/sql_htap.py
"""

import random

import numpy as np

from repro.db import Catalog
from repro.db.engines.rowstore import RowStoreEngine
from repro.db.mvcc import TransactionManager, run_transaction
from repro.db.schema import Column, TableSchema
from repro.db.sql.pipeline import Session
from repro.db.types import INT32
from repro.obs import MetricsRegistry, Tracer

ANALYTIC_SQL = (
    "SELECT o_status AS status, sum(o_amount) AS revenue, count(*) AS n "
    "FROM orders WHERE o_amount > 50 GROUP BY o_status"
)

N_CUSTOMERS = 8


# ----------------------------------------------------------------------
# One workload, described as data so both worlds replay the same ops.
# ----------------------------------------------------------------------
def make_workload(rounds=4, per_round=40, seed=11):
    """Rounds of (op, ...) tuples: inserts, payments, purges."""
    rng = random.Random(seed)
    ops, next_id = [], 0
    for _ in range(rounds):
        batch = []
        for _ in range(per_round):
            roll = rng.random()
            if roll < 0.60 or next_id < 10:
                batch.append(
                    ("insert", next_id, rng.randrange(N_CUSTOMERS),
                     rng.randrange(10, 500))
                )
                next_id += 1
            elif roll < 0.85:
                # A customer pays every open order they have.
                batch.append(("pay", rng.randrange(N_CUSTOMERS)))
            else:
                # Archival: drop cheap already-paid orders.
                batch.append(("purge", rng.randrange(40, 200)))
        ops.append(batch)
    return ops


# ----------------------------------------------------------------------
# World 1: everything is SQL text.
# ----------------------------------------------------------------------
def apply_sql(session, op):
    if op[0] == "insert":
        _, oid, cust, amount = op
        session.execute(
            "INSERT INTO orders (o_id, o_customer, o_amount, o_status) "
            f"VALUES ({oid}, {cust}, {amount}, 0)"
        )
    elif op[0] == "pay":
        session.execute(
            "UPDATE orders SET o_status = 1 "
            f"WHERE o_customer = {op[1]} AND o_status = 0"
        )
    else:
        session.execute(
            "DELETE FROM orders "
            f"WHERE o_status = 1 AND o_amount < {op[1]}"
        )


# ----------------------------------------------------------------------
# World 2: direct MVCC transactions + engine execution.
# ----------------------------------------------------------------------
def apply_programmatic(manager, table, op):
    def body(txn):
        if op[0] == "insert":
            _, oid, cust, amount = op
            txn.insert(
                table,
                {"o_id": oid, "o_customer": cust,
                 "o_amount": amount, "o_status": 0},
            )
            return
        mask = txn.visibility(table)
        status = table.column_values("o_status")
        if op[0] == "pay":
            customer = table.column_values("o_customer")
            hits = mask & (customer == op[1]) & (status == 0)
            for slot in np.flatnonzero(hits):
                txn.update(table, int(slot), {"o_status": 1})
        else:
            amount = table.column_values("o_amount")
            hits = mask & (status == 1) & (amount < op[1])
            for slot in np.flatnonzero(hits):
                txn.delete(table, int(slot))

    run_transaction(manager, body)


def main():
    # SQL world: one session, tracer + metrics attached.
    metrics = MetricsRegistry()
    session = Session(tracer=Tracer(), metrics=metrics)
    session.execute(
        "CREATE TABLE orders (o_id INT32, o_customer INT32, "
        "o_amount INT32, o_status INT32)"
    )

    # Programmatic world: same schema, built by hand.
    catalog = Catalog()
    table = catalog.create_table(
        TableSchema(
            "orders",
            [Column("o_id", INT32), Column("o_customer", INT32),
             Column("o_amount", INT32), Column("o_status", INT32)],
            mvcc=True,
        )
    )
    manager = TransactionManager()
    engine = RowStoreEngine(catalog)

    print("=== one HTAP workload, two front doors ===")
    for rnd, batch in enumerate(make_workload(), start=1):
        for op in batch:
            apply_sql(session, op)
            apply_programmatic(manager, table, op)

        via_sql = session.execute(ANALYTIC_SQL)
        via_api = engine.execute(ANALYTIC_SQL, snapshot_ts=manager.now)
        sql_rows, api_rows = via_sql.rows, via_api.result.rows()
        assert via_sql.names == tuple(via_api.result.names)
        assert sql_rows == api_rows, (sql_rows, api_rows)
        print(f"round {rnd}: {len(batch)} ops, analytic answer "
              f"{sql_rows} — SQL == programmatic")

    # Snapshot isolation through the front door: an explicit transaction
    # that ROLLBACKs leaves nothing behind.
    before = session.execute("SELECT count(*) AS n FROM orders").rows[0][0]
    session.execute("BEGIN")
    session.execute("DELETE FROM orders WHERE o_amount > 0")
    session.execute("ROLLBACK")
    after = session.execute("SELECT count(*) AS n FROM orders").rows[0][0]
    assert before == after
    print(f"\nROLLBACK kept all {after} rows — the delete never published.")

    print("\n=== EXPLAIN ANALYZE of the analytic query ===")
    print(session.execute(f"EXPLAIN ANALYZE {ANALYTIC_SQL}").plan)

    print("\n=== session telemetry (sql_* series) ===")
    sample = metrics.collect()
    for name in ("sql_statements_total", "sql_selects_total", "sql_dml_total",
                 "sql_txn_commits_total", "sql_rows_written_total"):
        print(f"  {name:24} {sample[name]:g}")

    session.close()
    print("\nevery round identical through both doors — the SQL pipeline "
          "adds no semantics, only a front door.")


if __name__ == "__main__":
    main()
