"""Relational Storage: the fabric inside a computational SSD (§IV-D).

Compares three ways to answer a projection/selection/aggregation over a
lineitem table resident on a simulated SmartSSD-class device:

1. legacy: ship every page to the host, process there;
2. Relational Storage projection: transform rows to the needed column
   group in-device, ship only packed bytes;
3. Relational Storage aggregation (§IV-B pushed all the way down): ship
   eight bytes.

Run:  python examples/storage_pushdown.py
"""

from repro.core.selection import CompareOp, FabricAggregate, FabricFilter, FabricPredicate
from repro.storage import RelationalStorage, SsdTable
from repro.workloads.tpch import generate_lineitem


def main():
    catalog, table = generate_lineitem(100_000)
    ssd = SsdTable(table)
    print(f"{table}")
    print(
        f"device: {ssd.flash.config.channels} channels x "
        f"{ssd.flash.config.dies_per_channel} dies, "
        f"{ssd.total_pages} pages of {ssd.flash.config.page_bytes} B\n"
    )

    # --- 1. legacy host-side scan -----------------------------------------
    _, legacy = ssd.scan_rows()
    print("legacy scan (all pages to host):")
    print(f"  host bytes : {legacy.host_bytes:,}")
    print(f"  time       : {legacy.total_us:,.0f} us "
          f"(device {legacy.device_us:,.0f}, link {legacy.link_us:,.0f})\n")

    # --- 2. in-storage projection + selection -----------------------------
    rs = RelationalStorage(ssd)
    geometry = table.schema.geometry(["l_extendedprice", "l_discount"])
    base = table.schema.full_geometry()
    selection = FabricFilter.of(
        FabricPredicate("l_quantity", CompareOp.LT, 24 * 100),  # DECIMAL(2) raw
        FabricPredicate("l_discount", CompareOp.GE, 5),
        FabricPredicate("l_discount", CompareOp.LE, 7),
    )
    group = rs.configure(table.frame, geometry, base_geometry=base, fabric_filter=selection)
    r = group.report
    print("relational storage (project {extendedprice, discount}, select in-device):")
    print(f"  rows emitted : {r.rows_emitted:,} of {table.nrows:,}")
    print(f"  host bytes   : {r.host_bytes:,} "
          f"({100 * r.host_bytes_saved / r.baseline_host_bytes:.1f}% saved)")
    print(f"  time         : {r.total_us:,.0f} us "
          f"(device {r.device_us:,.0f}, engine {r.engine_us:,.0f}, "
          f"link {r.link_us:,.0f})")
    print(f"  speedup vs legacy: {legacy.total_us / r.total_us:.2f}x\n")

    # The data is real: revenue computed from the shipped column group.
    revenue = float(
        (group.column("l_extendedprice") * group.column("l_discount")).sum()
    ) / 10_000  # two DECIMAL(2) rescales
    print(f"  revenue over shipped group: {revenue:,.2f}\n")

    # --- 3. in-storage aggregation ----------------------------------------
    count, agg_report = rs.aggregate(
        base, FabricAggregate(field="l_quantity", kind="count"), fabric_filter=selection
    )
    print("relational storage (aggregation pushed in-device):")
    print(f"  qualifying rows: {count:,}")
    print(f"  host bytes     : {agg_report.host_bytes} (one result)")
    print(f"  time           : {agg_report.total_us:,.0f} us")
    print(f"  speedup vs legacy: {legacy.total_us / agg_report.total_us:.2f}x")


if __name__ == "__main__":
    main()
