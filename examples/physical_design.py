"""Physical design with and without the fabric (§III-A, §III-B).

Three acts:

1. the classical vertical-partitioning advisor picks the best static
   layout for a mixed workload — a decision that needs workload
   knowledge and goes stale when the workload drifts;
2. the fabric needs no decision: every query gets its exact column
   group, and the bytes-moved comparison shows static designs at best
   approach it;
3. the optimizer picks access paths per query ("construct the fastest
   solution"), including a B+-tree probe for a point query.

Run:  python examples/physical_design.py
"""

from repro.db.advisor import WorkloadQuery, advise_partitions
from repro.db.index import build_index
from repro.db.plan.optimizer import Optimizer
from repro.workloads.synthetic import make_wide_table


def advisor_demo(table):
    print("=== vertical partitioning advisor vs the fabric ===")
    workload = [
        WorkloadQuery(("c0", "c1"), frequency=40),          # hot dashboard
        WorkloadQuery(("c2", "c3", "c4", "c5"), frequency=10),  # report
        WorkloadQuery(("c0", "c8"), frequency=8),           # drill-down
        WorkloadQuery(tuple(f"c{i}" for i in range(16)), frequency=1),  # export
    ]
    report = advise_partitions(table.schema, workload, nrows=table.nrows)
    print(report.summary())
    print("\ngreedy merge trace:")
    for step in report.steps:
        print(f"  {step}")
    print()

    print("workload drift: the dashboard moves from (c0,c1) to (c6,c7) —")
    drifted = [
        WorkloadQuery(("c6", "c7"), frequency=40),
        WorkloadQuery(("c2", "c3", "c4", "c5"), frequency=10),
        WorkloadQuery(("c0", "c8"), frequency=8),
        WorkloadQuery(tuple(f"c{i}" for i in range(16)), frequency=1),
    ]
    from repro.db.advisor import fabric_cost, partition_cost

    stale_cost = partition_cost(table.schema, report.partitions, drifted, table.nrows)
    fresh = advise_partitions(table.schema, drifted, nrows=table.nrows)
    print(f"  stale static layout on drifted workload : {stale_cost:,.3g} bytes")
    print(f"  re-advised static layout                : {fresh.partitioned_cost:,.3g} bytes")
    print(f"  fabric (no re-design needed)            : "
          f"{fabric_cost(table.schema, drifted, table.nrows):,.3g} bytes")
    print()


def optimizer_demo(catalog, table):
    print("=== access-path selection per query ===")
    catalog.add_index("wide", "c0", build_index(table, "c0"))
    optimizer = Optimizer(catalog)
    queries = {
        "range scan, 6 columns": (
            "SELECT sum(c1 + c2 + c3 + c4 + c5 + c6) AS s FROM wide WHERE c7 < 300000"
        ),
        "narrow scan, 1 column": "SELECT sum(c1) AS s FROM wide",
        "point query on indexed key": (
            "SELECT c1, c2 FROM wide WHERE c0 = 123456"
        ),
    }
    for label, sql in queries.items():
        decision = optimizer.choose(sql)
        print(f"{label}:")
        for path, cycles in decision.ranked():
            marker = "  <== chosen" if path == decision.winner else ""
            print(f"    {path:16} {cycles:14,.0f}{marker}")
    print()
    print("fabric off (legacy system) — the same range scan:")
    legacy = Optimizer(catalog, fabric_available=False)
    decision = legacy.choose(next(iter(queries.values())))
    for path, cycles in decision.ranked():
        marker = "  <== chosen" if path == decision.winner else ""
        print(f"    {path:16} {cycles:14,.0f}{marker}")


if __name__ == "__main__":
    catalog, table = make_wide_table(nrows=200_000, ncols=16, row_bytes=64)
    advisor_demo(table)
    optimizer_demo(catalog, table)
